/**
 * @file
 * alr_sim: command-line driver for the Alrescha simulator.
 *
 * Load a matrix (Matrix Market file, a saved program image, or a
 * generator spec), run a kernel, and print the result summary plus the
 * full statistics dump.  Examples:
 *
 *   alr_sim --gen stencil3d:16 --kernel pcg
 *   alr_sim --matrix system.mtx --kernel symgs --omega 16
 *   alr_sim --gen rmat:10 --kernel bfs --source 3
 *   alr_sim --gen stencil2d:64 --kernel spmv --save prog.alr
 *   alr_sim --image prog.alr --kernel spmv
 *   alr_sim --gen banded:4096 --kernel pcg --rcm --stats
 *   alr_sim --gen stencil3d:24 --kernel pcg --timeline trace.json --report
 *   alr_sim --gen stencil3d:24 --kernel pcg --stats-interval 100000 --json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "alrescha/accelerator.hh"
#include "alrescha/program_image.hh"
#include "alrescha/sim/profile.hh"
#include "alrescha/sim/replay.hh"
#include "kernels/eigen.hh"
#include "common/logging.hh"
#include "common/version.hh"
#include "common/thread_pool.hh"
#include "common/timeline.hh"
#include "common/trace.hh"
#include "common/random.hh"
#include "kernels/graph.hh"
#include "sparse/generators.hh"
#include "sparse/mmio.hh"
#include "sparse/pattern_stats.hh"
#include "sparse/reorder.hh"

using namespace alr;

namespace {

struct Options
{
    std::string matrixPath;
    std::string imagePath;
    std::string genSpec;
    std::string savePath;
    std::string tracePath;
    std::string timelinePath;
    std::string profilePath;
    std::string profileCsvPath;
    std::string profileFoldedPath;
    std::string kernel = "spmv";
    Index omega = 8;
    Index source = 0;
    bool rcm = false;
    bool noSchedule = false;
    SimdMode simdMode = SimdMode::Auto;
    bool parallelTiming = false;
    bool dumpStats = false;
    bool json = false;
    bool report = false;
    long statsInterval = 0;
    int maxIterations = 500;
    int threads = 0;
    int engineThreads = 0;
    int scheduleCache = 0;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: alr_sim [--matrix F.mtx | --image F.alr | --gen SPEC]\n"
        "               [--kernel spmv|symgs|pcg|bicgstab|gmres|\n"
        "                         bfs|sssp|pr|cc|eigen]\n"
        "               [--omega N] [--source V] [--rcm] [--stats] [--json]\n"
        "               [--report] [--timeline F.json] [--stats-interval N]\n"
        "               [--profile F.json] [--profile-csv F.csv]\n"
        "               [--profile-folded F.folded]\n"
        "               [--iters N] [--threads N] [--engine-threads N]\n"
        "               [--parallel-timing] [--schedule-cache N]\n"
        "               [--save F.alr] [--trace F.log] [--no-schedule]\n"
        "               [--simd MODE] [--version]\n"
        "  SPEC: stencil2d:N | stencil3d:N | banded:N | rmat:SCALE |\n"
        "        roadgrid:N | powerlaw:N\n"
        "  --stats           dump the hierarchical stat tree\n"
        "  --json            emit one JSON document on stdout\n"
        "  --report          utilization summary + profile hotspots\n"
        "  --timeline F      Perfetto-loadable cycle timeline\n"
        "  --stats-interval  run-granular stat snapshots every N cycles\n"
        "  --profile F       cycle-accounting profile (JSON)\n"
        "  --profile-csv F   per-block-row cause heatmap (CSV)\n"
        "  --profile-folded  flamegraph.pl-compatible folded stacks\n"
        "  --no-schedule     interpreter engine (no compiled schedules)\n"
        "  --simd MODE       replay kernel ISA: auto (default; widest\n"
        "                    the CPU runs), scalar, sse2, avx2, avx512,\n"
        "                    neon; forced modes fall back down the chain\n"
        "                    with a warning when unavailable\n"
        "                    (--no-simd is kept as an alias for\n"
        "                    --simd scalar)\n"
        "  --parallel-timing partitioned timing walk on the engine\n"
        "                    threads (bit-identical to the serial walk)\n"
        "  --schedule-cache  compiled-schedule MRU cache capacity\n"
        "                    (default 8; evictions recompile)\n"
        "  --version         print build provenance and exit\n");
    std::exit(2);
}

void
printVersion()
{
    std::printf("alr_sim %s (simd build %s, runtime %s, "
                "omega specializations %s)\n",
                version::gitDescribe(), version::simdBuild(),
                replay::isaName(), replay::omegaSpecializations());
    std::exit(0);
}

/** The ISA the replay actually runs under opt's --simd mode. */
const char *
runtimeIsa(const Options &opt)
{
    return replay::selectedName(opt.simdMode);
}

CsrMatrix
generate(const std::string &spec)
{
    auto colon = spec.find(':');
    if (colon == std::string::npos)
        fatal("generator spec needs NAME:SIZE, got '%s'", spec.c_str());
    std::string name = spec.substr(0, colon);
    long size = std::atol(spec.c_str() + colon + 1);
    if (size <= 0)
        fatal("bad generator size in '%s'", spec.c_str());

    Rng rng(1234);
    if (name == "stencil2d")
        return gen::stencil2d(Index(size), Index(size), 5);
    if (name == "stencil3d")
        return gen::stencil3d(Index(size), Index(size), Index(size), 27);
    if (name == "banded")
        return gen::banded(Index(size), 12, 0.8, rng);
    if (name == "rmat")
        return gen::rmat(int(size), 8, rng);
    if (name == "roadgrid")
        return gen::roadGrid(Index(size), Index(size), 0.01, rng);
    if (name == "powerlaw")
        return gen::powerLawGraph(Index(size), 12, 0.9, rng, 0.6);
    fatal("unknown generator '%s'", name.c_str());
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--matrix") {
            opt.matrixPath = next();
        } else if (arg == "--image") {
            opt.imagePath = next();
        } else if (arg == "--gen") {
            opt.genSpec = next();
        } else if (arg == "--save") {
            opt.savePath = next();
        } else if (arg == "--trace") {
            opt.tracePath = next();
        } else if (arg == "--kernel") {
            opt.kernel = next();
        } else if (arg == "--omega") {
            opt.omega = Index(std::atoi(next().c_str()));
        } else if (arg == "--source") {
            opt.source = Index(std::atoi(next().c_str()));
        } else if (arg == "--iters") {
            opt.maxIterations = std::atoi(next().c_str());
        } else if (arg == "--threads") {
            opt.threads = std::atoi(next().c_str());
            if (opt.threads <= 0)
                usage();
        } else if (arg == "--engine-threads") {
            opt.engineThreads = std::atoi(next().c_str());
            if (opt.engineThreads <= 0)
                usage();
        } else if (arg == "--schedule-cache") {
            opt.scheduleCache = std::atoi(next().c_str());
            if (opt.scheduleCache <= 0)
                usage();
        } else if (arg == "--parallel-timing") {
            opt.parallelTiming = true;
        } else if (arg == "--simd") {
            std::string mode = next();
            if (!replay::parseSimdMode(mode.c_str(), &opt.simdMode)) {
                std::fprintf(stderr, "alr_sim: unknown --simd mode '%s'\n",
                             mode.c_str());
                usage();
            }
        } else if (arg == "--no-simd") {
            opt.simdMode = SimdMode::Scalar;
        } else if (arg == "--rcm") {
            opt.rcm = true;
        } else if (arg == "--no-schedule") {
            opt.noSchedule = true;
        } else if (arg == "--stats") {
            opt.dumpStats = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--report") {
            opt.report = true;
        } else if (arg == "--timeline") {
            opt.timelinePath = next();
        } else if (arg == "--profile") {
            opt.profilePath = next();
        } else if (arg == "--profile-csv") {
            opt.profileCsvPath = next();
        } else if (arg == "--profile-folded") {
            opt.profileFoldedPath = next();
        } else if (arg == "--version") {
            printVersion();
        } else if (arg == "--stats-interval") {
            opt.statsInterval = std::atol(next().c_str());
            if (opt.statsInterval <= 0)
                usage();
        } else {
            usage();
        }
    }
    int sources = !opt.matrixPath.empty() + !opt.imagePath.empty() +
                  !opt.genSpec.empty();
    if (sources != 1)
        usage();
    return opt;
}

/** snprintf into an ostream (keeps the historical printf formats). */
void
jnum(std::ostream &os, const char *fmt, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    os << buf;
}

/** The --report utilization summary as a JSON object. */
void
printJsonUtilization(std::ostream &os, const UtilizationReport &u,
                     const char *pad)
{
    os << "{\n";
    os << pad << "  \"cycles\": " << u.cycles << ",\n";
    os << pad << "  \"alu_occupancy\": ";
    jnum(os, "%.6f", u.aluOccupancy);
    os << ",\n" << pad << "  \"tree_occupancy\": ";
    jnum(os, "%.6f", u.treeOccupancy);
    os << ",\n" << pad << "  \"bandwidth_utilization\": ";
    jnum(os, "%.6f", u.bandwidthUtilization);
    os << ",\n" << pad << "  \"cache_hit_rate\": ";
    jnum(os, "%.6f", u.cacheHitRate);
    os << ",\n" << pad << "  \"cache_time_fraction\": ";
    jnum(os, "%.6f", u.cacheTimeFraction);
    os << ",\n" << pad << "  \"sequential_op_fraction\": ";
    jnum(os, "%.6f", u.sequentialOpFraction);
    os << ",\n" << pad << "  \"sequential_cycle_fraction\": ";
    jnum(os, "%.6f", u.sequentialCycleFraction);
    os << ",\n" << pad << "  \"reconfig_hidden_frac\": ";
    jnum(os, "%.6f", u.reconfigHiddenFraction);
    os << ",\n" << pad << "  \"flops\": ";
    jnum(os, "%.0f", u.flops);
    os << ",\n" << pad << "  \"dram_bytes\": ";
    jnum(os, "%.0f", u.dramBytes);
    os << ",\n" << pad << "  \"arithmetic_intensity\": ";
    jnum(os, "%.9g", u.arithmeticIntensity);
    os << ",\n" << pad << "  \"achieved_gflops\": ";
    jnum(os, "%.9g", u.achievedGflops);
    os << ",\n" << pad << "  \"peak_gflops\": ";
    jnum(os, "%.9g", u.peakGflops);
    os << ",\n" << pad << "  \"attainable_gflops\": ";
    jnum(os, "%.9g", u.attainableGflops);
    os << "\n" << pad << "}";
}

/**
 * The full --json document.  Stats, utilization, and snapshots embed
 * as sub-objects so the output stays one valid JSON document (the old
 * driver dumped the stats table after the closing brace, corrupting
 * it).
 */
void
printJsonReport(std::ostream &os, const Accelerator &acc,
                const Options &opt, const stats::StatSnapshotter *snap)
{
    AccelReport r = acc.report();
    os << "{\n";
    os << "  \"kernel\": \"" << opt.kernel << "\",\n";
    os << "  \"omega\": " << opt.omega << ",\n";
    os << "  \"cycles\": " << r.cycles << ",\n";
    os << "  \"seconds\": ";
    jnum(os, "%.9g", r.seconds);
    os << ",\n  \"dram_bytes\": ";
    jnum(os, "%.0f", r.bytesFromMemory);
    os << ",\n  \"bandwidth_utilization\": ";
    jnum(os, "%.6f", r.bandwidthUtilization);
    os << ",\n  \"sequential_op_fraction\": ";
    jnum(os, "%.6f", r.sequentialOpFraction);
    os << ",\n  \"reconfigurations\": ";
    jnum(os, "%.0f", r.reconfigurations);
    os << ",\n  \"energy_joules\": ";
    jnum(os, "%.9g", r.energyJoules);
    os << ",\n  \"energy_breakdown\": {\"dram\": ";
    jnum(os, "%.9g", r.energy.dram);
    os << ", \"sram\": ";
    jnum(os, "%.9g", r.energy.sram);
    os << ", \"compute\": ";
    jnum(os, "%.9g", r.energy.compute);
    os << ", \"reconfig\": ";
    jnum(os, "%.9g", r.energy.reconfig);
    os << ", \"static\": ";
    jnum(os, "%.9g", r.energy.staticEnergy);
    os << "}";
    os << ",\n  \"version\": ";
    replay::writeVersionJson(os, opt.simdMode);
    if (profile::enabled()) {
        // Embed the profile document verbatim; it is self-contained
        // JSON, so nesting it keeps the output one valid document.
        std::ostringstream ps;
        profile::exportJson(ps, {opt.kernel, opt.omega,
                                 acc.engine().totalCycles(),
                                 runtimeIsa(opt)});
        std::string doc = ps.str();
        while (!doc.empty() && doc.back() == '\n')
            doc.pop_back();
        os << ",\n  \"profile\": " << doc;
    }
    if (opt.report) {
        os << ",\n  \"utilization\": ";
        printJsonUtilization(os, acc.utilization(), "  ");
    }
    if (opt.dumpStats) {
        os << ",\n  \"stats\": ";
        acc.engine().statGroup().dumpJson(os, 2);
    }
    if (snap) {
        os << ",\n  \"snapshots\": ";
        snap->dumpJson(os);
    }
    os << "\n}\n";
}

/** The --report utilization summary as a human-readable table. */
void
printUtilization(const Accelerator &acc)
{
    UtilizationReport u = acc.utilization();
    std::printf("\nutilization:\n");
    std::printf("  alu occupancy      %.1f%%\n", 100.0 * u.aluOccupancy);
    std::printf("  reduce tree        %.1f%%\n", 100.0 * u.treeOccupancy);
    std::printf("  memory bandwidth   %.1f%%\n",
                100.0 * u.bandwidthUtilization);
    std::printf("  cache hit rate     %.1f%%\n", 100.0 * u.cacheHitRate);
    std::printf("  cache port busy    %.1f%%\n",
                100.0 * u.cacheTimeFraction);
    std::printf("  sequential         %.1f%% of flops, %.1f%% of cycles\n",
                100.0 * u.sequentialOpFraction,
                100.0 * u.sequentialCycleFraction);
    std::printf("  reconfig hidden    %.1f%%\n",
                100.0 * u.reconfigHiddenFraction);
    std::printf("  roofline           %.3f flop/byte, %.2f of %.2f "
                "attainable GFLOP/s (peak %.2f)\n",
                u.arithmeticIntensity, u.achievedGflops,
                u.attainableGflops, u.peakGflops);
}

/** The --report hotspot table: hottest cycle-accounting buckets. */
void
printHotspots(const Accelerator &acc, size_t k)
{
    std::vector<profile::BucketRow> hot = profile::hotspots(k);
    if (hot.empty())
        return;
    uint64_t total = acc.engine().totalCycles();
    std::printf("\nhotspots (top %zu buckets):\n", hot.size());
    std::printf("  %-8s %9s %-17s %12s %6s %12s\n", "dp", "block_row",
                "cause", "cycles", "%", "bytes");
    for (const profile::BucketRow &r : hot) {
        char row[24];
        if (r.blockRow < 0)
            std::snprintf(row, sizeof(row), "run");
        else
            std::snprintf(row, sizeof(row), "%lld",
                          (long long)r.blockRow);
        std::printf("  %-8s %9s %-17s %12llu %5.1f%% %12llu\n",
                    toString(r.dp), row, profile::toString(r.cause),
                    (unsigned long long)r.cycles,
                    total ? 100.0 * double(r.cycles) / double(total) : 0.0,
                    (unsigned long long)r.bytes);
    }
}

void
printReport(const Accelerator &acc)
{
    AccelReport r = acc.report();
    std::printf("\ncycles               %llu\n",
                (unsigned long long)r.cycles);
    std::printf("time                 %.3f us\n", r.seconds * 1e6);
    std::printf("DRAM traffic         %.1f KB\n",
                r.bytesFromMemory / 1024.0);
    std::printf("bandwidth utilized   %.1f%%\n",
                100.0 * r.bandwidthUtilization);
    std::printf("sequential ops       %.1f%%\n",
                100.0 * r.sequentialOpFraction);
    std::printf("reconfigurations     %.0f\n", r.reconfigurations);
    std::printf("energy               %.3f uJ (dram %.1f%%, sram %.1f%%, "
                "compute %.1f%%)\n",
                r.energyJoules * 1e6, 100.0 * r.energy.dram / r.energyJoules,
                100.0 * r.energy.sram / r.energyJoules,
                100.0 * r.energy.compute / r.energyJoules);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    // Host-preprocessing thread count: --threads beats ALR_THREADS
    // beats hardware concurrency.
    if (opt.threads > 0)
        ThreadPool::setGlobalThreadCount(opt.threads);

    std::ofstream traceFile;
    if (!opt.tracePath.empty()) {
        traceFile.open(opt.tracePath);
        if (!traceFile)
            fatal("cannot create trace file '%s'", opt.tracePath.c_str());
        trace::setSink(&traceFile);
    }

    // Arm the timeline recorder before any kernel runs so the whole
    // modeled execution lands in the trace.
    if (!opt.timelinePath.empty())
        timeline::setEnabled(true);

    // Likewise the cycle-accounting profiler: any profile export, or a
    // --report (which prints the hotspot table), records every run.
    bool profiling = !opt.profilePath.empty() ||
                     !opt.profileCsvPath.empty() ||
                     !opt.profileFoldedPath.empty() || opt.report;
    if (profiling)
        profile::setEnabled(true);

    bool isGraph = opt.kernel == "bfs" || opt.kernel == "sssp" ||
                   opt.kernel == "pr" || opt.kernel == "cc";

    AccelParams params;
    params.omega = opt.omega;
    // --no-schedule pins the engine to the per-iteration interpreter
    // (the two modes are bit-identical; this exposes the slow path for
    // debugging and for timing the schedule compiler's benefit).
    params.useSchedule = !opt.noSchedule;
    // Functional-replay knobs: both are bit-identical to the defaults,
    // exposed for timing the host-side replay cost in isolation.
    if (opt.engineThreads > 0)
        params.engineThreads = opt.engineThreads;
    params.simdMode = opt.simdMode;
    // Partitioned timing walk on the engine threads; bit-identical to
    // the serial walk at any thread count (ALR_PARALLEL_TIMING=1 is
    // the environment equivalent).
    params.parallelTiming = opt.parallelTiming;
    if (opt.scheduleCache > 0)
        params.scheduleCacheCapacity = opt.scheduleCache;
    Accelerator acc(params);

    // Periodic stat snapshots: the engine samples after each run once
    // the cumulative cycle count crosses an interval boundary.
    std::unique_ptr<stats::StatSnapshotter> snap;
    if (opt.statsInterval > 0) {
        snap = std::make_unique<stats::StatSnapshotter>(
            acc.engine().statGroup(), uint64_t(opt.statsInterval));
        snap->sampleNow(0);
        acc.engine().setSnapshotter(snap.get());
    }

    CsrMatrix a;
    if (!opt.imagePath.empty()) {
        // Pre-built program image: decode the matrix back for the
        // host-side checks, then reload through the normal path so all
        // kernels are available.
        ProgramImage image = loadProgramImageFile(opt.imagePath);
        a = image.matrix.decode();
        if (!opt.json)
            std::printf("program image: omega=%u, %zu tables, "
                        "%zu blocks\n",
                        image.matrix.omega(), image.tables.size(),
                        image.matrix.blocks().size());
        if (image.matrix.layout() == LdLayout::SymGs)
            acc.loadPde(a);
        else if (isGraph)
            acc.loadGraph(a.transposed()); // image stored adj^T
        else
            acc.loadSpmvOnly(a);
    } else {
        a = !opt.matrixPath.empty()
                ? CsrMatrix::fromCoo(readMatrixMarketFile(opt.matrixPath))
                : generate(opt.genSpec);
        if (opt.rcm) {
            auto perm = reverseCuthillMcKee(a);
            a = a.permuted(perm);
            inform("applied RCM reordering");
        }
        if (isGraph)
            acc.loadGraph(a);
        else if (opt.kernel == "spmv" || opt.kernel == "bicgstab" ||
                 opt.kernel == "gmres" || opt.kernel == "eigen")
            acc.loadSpmvOnly(a);
        else
            acc.loadPde(a);
    }

    if (!opt.json) {
        PatternStats ps = analyzePattern(a, opt.omega);
        std::printf("matrix: %u x %u, %u nnz, bandwidth %u, block fill "
                    "%.3f\n",
                    a.rows(), a.cols(), a.nnz(), ps.bandwidth,
                    ps.blockDensity);
    }

    if (!opt.savePath.empty()) {
        ProgramImage image =
            isGraph ? buildGraphProgram(a, opt.omega)
            : opt.kernel == "spmv"
                ? buildSpmvProgram(a, opt.omega)
                : buildPdeProgram(a, opt.omega);
        saveProgramImageFile(opt.savePath, image);
        if (!opt.json)
            std::printf("saved program image to %s\n",
                        opt.savePath.c_str());
    }

    if (opt.kernel == "spmv") {
        DenseVector x(a.cols(), 1.0);
        DenseVector y = acc.spmv(x);
        Value checksum = 0.0;
        for (Value v : y)
            checksum += v;
        if (!opt.json)
            std::printf("spmv checksum %.6g\n", checksum);
    } else if (opt.kernel == "symgs") {
        DenseVector b(a.rows(), 1.0), x(a.rows(), 0.0);
        acc.symgsSweep(b, x, GsSweep::Symmetric);
        if (!opt.json)
            std::printf("symgs sweep done, x[0] = %.6g\n", x[0]);
    } else if (opt.kernel == "pcg") {
        DenseVector b(a.rows(), 1.0);
        PcgOptions po;
        po.maxIterations = opt.maxIterations;
        PcgResult res = acc.pcg(b, po);
        if (!opt.json)
            std::printf("pcg: %s in %d iterations, residual %.3e\n",
                        res.converged ? "converged" : "NOT converged",
                        res.iterations, res.relResidual);
    } else if (opt.kernel == "bfs") {
        GraphResult res = acc.bfs(opt.source);
        Index reached = 0;
        for (Value d : res.values)
            reached += d != kInf;
        if (!opt.json)
            std::printf("bfs: %u reached in %d rounds\n", reached,
                        res.rounds);
    } else if (opt.kernel == "sssp") {
        GraphResult res = acc.sssp(opt.source);
        if (!opt.json)
            std::printf("sssp: %d rounds\n", res.rounds);
    } else if (opt.kernel == "pr") {
        GraphResult res = acc.pagerank();
        if (!opt.json)
            std::printf("pagerank: %d rounds\n", res.rounds);
    } else if (opt.kernel == "cc") {
        GraphResult res = acc.connectedComponents();
        std::set<long> roots;
        for (Value v : res.values)
            roots.insert(long(v));
        if (!opt.json)
            std::printf("components: %zu in %d rounds\n", roots.size(),
                        res.rounds);
    } else if (opt.kernel == "bicgstab") {
        KrylovResult res = acc.bicgstab(DenseVector(a.rows(), 1.0));
        if (!opt.json)
            std::printf("bicgstab: %s in %d iterations, residual %.3e\n",
                        res.converged ? "converged" : "NOT converged",
                        res.iterations, res.relResidual);
    } else if (opt.kernel == "gmres") {
        KrylovResult res = acc.gmres(DenseVector(a.rows(), 1.0));
        if (!opt.json)
            std::printf("gmres: %s in %d iterations, residual %.3e\n",
                        res.converged ? "converged" : "NOT converged",
                        res.iterations, res.relResidual);
    } else if (opt.kernel == "eigen") {
        auto fn = [&acc](const DenseVector &x) { return acc.spmv(x); };
        LanczosResult res = lanczosWith(fn, a.rows());
        if (!opt.json)
            std::printf("lanczos: lambda in [%.6g, %.6g], cond %.3g "
                        "(%d steps)\n",
                        res.lambdaMin, res.lambdaMax,
                        res.conditionNumber, res.steps);
    } else {
        fatal("unknown kernel '%s'", opt.kernel.c_str());
    }

    // Close the time series with the end-of-run state.
    if (snap)
        snap->sampleNow(acc.engine().totalCycles());

    if (opt.json) {
        std::fflush(stdout); // keep printf output ahead of the document
        printJsonReport(std::cout, acc, opt, snap.get());
        std::cout.flush();
    } else {
        printReport(acc);
        if (opt.report) {
            printUtilization(acc);
            printHotspots(acc, 10);
        }
        if (opt.dumpStats) {
            std::printf("\n");
            acc.engine().statGroup().dump(std::cout);
        }
        if (snap) {
            std::printf("\n");
            std::cout.flush();
            snap->dumpCsv(std::cout);
        }
    }

    if (profiling) {
        profile::ExportMeta meta{opt.kernel, opt.omega,
                                 acc.engine().totalCycles(),
                                 runtimeIsa(opt)};
        auto writeTo = [&](const std::string &path, auto emit,
                           const char *what) {
            if (path.empty())
                return;
            std::ofstream pf(path);
            if (!pf)
                fatal("cannot create %s file '%s'", what, path.c_str());
            emit(pf);
            if (!opt.json)
                std::printf("%s written to %s\n", what, path.c_str());
        };
        writeTo(opt.profilePath,
                [&](std::ostream &os) { profile::exportJson(os, meta); },
                "profile");
        writeTo(opt.profileCsvPath,
                [&](std::ostream &os) { profile::exportCsv(os); },
                "profile heatmap");
        writeTo(opt.profileFoldedPath,
                [&](std::ostream &os) { profile::exportFolded(os); },
                "folded stacks");
    }

    if (!opt.timelinePath.empty()) {
        timeline::setEnabled(false);
        std::ofstream tf(opt.timelinePath);
        if (!tf)
            fatal("cannot create timeline file '%s'",
                  opt.timelinePath.c_str());
        timeline::exportChromeTrace(tf);
        if (!opt.json)
            std::printf("timeline written to %s (%llu events, %llu "
                        "dropped)\n",
                        opt.timelinePath.c_str(),
                        (unsigned long long)timeline::events().size(),
                        (unsigned long long)timeline::dropped());
    }
    if (!opt.tracePath.empty()) {
        trace::setSink(nullptr);
        if (!opt.json)
            std::printf("trace written to %s\n", opt.tracePath.c_str());
    }
    return 0;
}
