/**
 * @file
 * alr_sim: command-line driver for the Alrescha simulator.
 *
 * Load a matrix (Matrix Market file, a saved program image, or a
 * generator spec), run a kernel, and print the result summary plus the
 * full statistics dump.  Examples:
 *
 *   alr_sim --gen stencil3d:16 --kernel pcg
 *   alr_sim --matrix system.mtx --kernel symgs --omega 16
 *   alr_sim --gen rmat:10 --kernel bfs --source 3
 *   alr_sim --gen stencil2d:64 --kernel spmv --save prog.alr
 *   alr_sim --image prog.alr --kernel spmv
 *   alr_sim --gen banded:4096 --kernel pcg --rcm --stats
 *   alr_sim --gen stencil3d:24 --kernel pcg --timeline trace.json --report
 *   alr_sim --gen stencil3d:24 --kernel pcg --stats-interval 100000 --json
 *
 * In-process A/B: run the same kernel on the same matrix twice --
 * baseline flags vs baseline + overrides -- and print the attributed
 * diff (per-bucket cycle deltas, stat deltas, energy deltas):
 *
 *   alr_sim --gen stencil3d:24 --kernel pcg --ab "--omega 16"
 *   alr_sim --gen banded:4096 --kernel spmv --ab "--no-schedule" --json
 *   alr_sim --gen stencil2d:64 --kernel spmv --ab "--rcm" \
 *           --fail-on 'cycles>0.1%'
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "alrescha/accelerator.hh"
#include "alrescha/program_image.hh"
#include "alrescha/report.hh"
#include "alrescha/sim/diff.hh"
#include "alrescha/sim/profile.hh"
#include "alrescha/sim/replay.hh"
#include "kernels/eigen.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/version.hh"
#include "common/thread_pool.hh"
#include "common/timeline.hh"
#include "common/trace.hh"
#include "common/random.hh"
#include "kernels/graph.hh"
#include "sparse/generators.hh"
#include "sparse/mmio.hh"
#include "sparse/pattern_stats.hh"
#include "sparse/reorder.hh"

using namespace alr;

namespace {

struct Options
{
    std::string matrixPath;
    std::string imagePath;
    std::string genSpec;
    std::string savePath;
    std::string tracePath;
    std::string timelinePath;
    std::string profilePath;
    std::string profileCsvPath;
    std::string profileFoldedPath;
    std::string kernel = "spmv";
    Index omega = 8;
    Index source = 0;
    bool rcm = false;
    bool noSchedule = false;
    SimdMode simdMode = SimdMode::Auto;
    bool parallelTiming = false;
    bool dumpStats = false;
    bool json = false;
    bool report = false;
    long statsInterval = 0;
    int maxIterations = 500;
    int threads = 0;
    int engineThreads = 0;
    int scheduleCache = 0;
    bool ab = false;          ///< --ab given (possibly empty overrides)
    std::string abOverrides;  ///< variant flag string
    std::string failOn;       ///< --fail-on threshold (A/B gate)
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: alr_sim [--matrix F.mtx | --image F.alr | --gen SPEC]\n"
        "               [--kernel spmv|symgs|pcg|bicgstab|gmres|\n"
        "                         bfs|sssp|pr|cc|eigen]\n"
        "               [--omega N] [--source V] [--rcm] [--stats] [--json]\n"
        "               [--report] [--timeline F.json] [--stats-interval N]\n"
        "               [--profile F.json] [--profile-csv F.csv]\n"
        "               [--profile-folded F.folded]\n"
        "               [--iters N] [--threads N] [--engine-threads N]\n"
        "               [--parallel-timing] [--schedule-cache N]\n"
        "               [--save F.alr] [--trace F.log] [--no-schedule]\n"
        "               [--simd MODE] [--ab \"FLAGS\"] [--fail-on RULE]\n"
        "               [--version]\n"
        "  SPEC: stencil2d:N | stencil3d:N | banded:N | rmat:SCALE |\n"
        "        roadgrid:N | powerlaw:N\n"
        "  --stats           dump the hierarchical stat tree\n"
        "  --json            emit one JSON document on stdout\n"
        "  --report          utilization summary + profile hotspots\n"
        "  --timeline F      Perfetto-loadable cycle timeline\n"
        "  --stats-interval  run-granular stat snapshots every N cycles\n"
        "  --profile F       cycle-accounting profile (JSON)\n"
        "  --profile-csv F   per-block-row cause heatmap (CSV)\n"
        "  --profile-folded  flamegraph.pl-compatible folded stacks\n"
        "  --no-schedule     interpreter engine (no compiled schedules)\n"
        "  --simd MODE       replay kernel ISA: auto (default; widest\n"
        "                    the CPU runs), scalar, sse2, avx2, avx512,\n"
        "                    neon; forced modes fall back down the chain\n"
        "                    with a warning when unavailable\n"
        "                    (--no-simd is kept as an alias for\n"
        "                    --simd scalar)\n"
        "  --parallel-timing partitioned timing walk on the engine\n"
        "                    threads (bit-identical to the serial walk)\n"
        "  --schedule-cache  compiled-schedule MRU cache capacity\n"
        "                    (default 8; evictions recompile)\n"
        "  --ab \"FLAGS\"      in-process A/B: rerun with FLAGS applied\n"
        "                    on top of the baseline flags (same matrix,\n"
        "                    same process) and print the attributed\n"
        "                    cycle/stat/energy diff; engine and kernel\n"
        "                    knobs only (--omega, --simd, --rcm,\n"
        "                    --no-schedule, ...), no file I/O flags\n"
        "  --fail-on RULE    with --ab: exit 1 when the diff exceeds\n"
        "                    METRIC>NUM[%%], e.g. 'cycles>0.1%%'\n"
        "  --version         print build provenance and exit\n");
    std::exit(2);
}

void
printVersion()
{
    std::printf("alr_sim %s (simd build %s, runtime %s, "
                "omega specializations %s)\n",
                version::gitDescribe(), version::simdBuild(),
                replay::isaName(), replay::omegaSpecializations());
    std::exit(0);
}

CsrMatrix
generate(const std::string &spec)
{
    auto colon = spec.find(':');
    if (colon == std::string::npos)
        fatal("generator spec needs NAME:SIZE, got '%s'", spec.c_str());
    std::string name = spec.substr(0, colon);
    long size = std::atol(spec.c_str() + colon + 1);
    if (size <= 0)
        fatal("bad generator size in '%s'", spec.c_str());

    Rng rng(1234);
    if (name == "stencil2d")
        return gen::stencil2d(Index(size), Index(size), 5);
    if (name == "stencil3d")
        return gen::stencil3d(Index(size), Index(size), Index(size), 27);
    if (name == "banded")
        return gen::banded(Index(size), 12, 0.8, rng);
    if (name == "rmat")
        return gen::rmat(int(size), 8, rng);
    if (name == "roadgrid")
        return gen::roadGrid(Index(size), Index(size), 0.01, rng);
    if (name == "powerlaw")
        return gen::powerLawGraph(Index(size), 12, 0.9, rng, 0.6);
    fatal("unknown generator '%s'", name.c_str());
}

/**
 * Apply one flag vector to @p opt.  The main command line and the --ab
 * override string share this; overrides (@p variant) are restricted to
 * engine/kernel knobs -- flags that change file I/O, the input matrix,
 * or the report shape would make the two sides incomparable and are
 * rejected with a clear error instead of silently diverging.
 */
void
applyArgs(Options &opt, const std::vector<std::string> &args,
          bool variant)
{
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size()) {
                if (variant)
                    fatal("--ab: flag '%s' needs a value", arg.c_str());
                usage();
            }
            return args[++i];
        };
        if (variant &&
            (arg == "--matrix" || arg == "--image" || arg == "--gen" ||
             arg == "--save" || arg == "--trace" ||
             arg == "--timeline" || arg == "--profile" ||
             arg == "--profile-csv" || arg == "--profile-folded" ||
             arg == "--ab" || arg == "--fail-on" || arg == "--json" ||
             arg == "--stats" || arg == "--report" ||
             arg == "--stats-interval" || arg == "--version")) {
            fatal("--ab override '%s' not allowed: only engine/kernel "
                  "knobs may differ between the two sides",
                  arg.c_str());
        }
        if (arg == "--matrix") {
            opt.matrixPath = next();
        } else if (arg == "--image") {
            opt.imagePath = next();
        } else if (arg == "--gen") {
            opt.genSpec = next();
        } else if (arg == "--save") {
            opt.savePath = next();
        } else if (arg == "--trace") {
            opt.tracePath = next();
        } else if (arg == "--kernel") {
            opt.kernel = next();
        } else if (arg == "--omega") {
            opt.omega = Index(std::atoi(next().c_str()));
        } else if (arg == "--source") {
            opt.source = Index(std::atoi(next().c_str()));
        } else if (arg == "--iters") {
            opt.maxIterations = std::atoi(next().c_str());
        } else if (arg == "--threads") {
            opt.threads = std::atoi(next().c_str());
            if (opt.threads <= 0)
                usage();
        } else if (arg == "--engine-threads") {
            opt.engineThreads = std::atoi(next().c_str());
            if (opt.engineThreads <= 0)
                usage();
        } else if (arg == "--schedule-cache") {
            opt.scheduleCache = std::atoi(next().c_str());
            if (opt.scheduleCache <= 0)
                usage();
        } else if (arg == "--parallel-timing") {
            opt.parallelTiming = true;
        } else if (arg == "--simd") {
            std::string mode = next();
            if (!replay::parseSimdMode(mode.c_str(), &opt.simdMode)) {
                std::fprintf(stderr, "alr_sim: unknown --simd mode '%s'\n",
                             mode.c_str());
                usage();
            }
        } else if (arg == "--no-simd") {
            opt.simdMode = SimdMode::Scalar;
        } else if (arg == "--rcm") {
            opt.rcm = true;
        } else if (arg == "--no-schedule") {
            opt.noSchedule = true;
        } else if (arg == "--stats") {
            opt.dumpStats = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--report") {
            opt.report = true;
        } else if (arg == "--timeline") {
            opt.timelinePath = next();
        } else if (arg == "--profile") {
            opt.profilePath = next();
        } else if (arg == "--profile-csv") {
            opt.profileCsvPath = next();
        } else if (arg == "--profile-folded") {
            opt.profileFoldedPath = next();
        } else if (arg == "--ab") {
            opt.ab = true;
            opt.abOverrides = next();
        } else if (arg == "--fail-on") {
            opt.failOn = next();
        } else if (arg == "--version") {
            printVersion();
        } else if (arg == "--stats-interval") {
            opt.statsInterval = std::atol(next().c_str());
            if (opt.statsInterval <= 0)
                usage();
        } else {
            if (variant)
                fatal("--ab: unknown override flag '%s'", arg.c_str());
            usage();
        }
    }
}

/** Whitespace-split an --ab override string into flag tokens. */
std::vector<std::string>
tokenize(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

Options
parse(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> args(argv + 1, argv + argc);
    applyArgs(opt, args, false);
    int sources = !opt.matrixPath.empty() + !opt.imagePath.empty() +
                  !opt.genSpec.empty();
    if (sources != 1)
        usage();
    if (!opt.failOn.empty() && !opt.ab)
        fatal("--fail-on needs --ab (file-vs-file gating is alr_diff)");
    return opt;
}

bool
isGraphKernel(const Options &opt)
{
    return opt.kernel == "bfs" || opt.kernel == "sssp" ||
           opt.kernel == "pr" || opt.kernel == "cc";
}

/** AccelParams for one side of a run (shared by normal and A/B). */
AccelParams
paramsFrom(const Options &opt)
{
    AccelParams params;
    params.omega = opt.omega;
    // --no-schedule pins the engine to the per-iteration interpreter
    // (the two modes are bit-identical; this exposes the slow path for
    // debugging and for timing the schedule compiler's benefit).
    params.useSchedule = !opt.noSchedule;
    // Functional-replay knobs: both are bit-identical to the defaults,
    // exposed for timing the host-side replay cost in isolation.
    if (opt.engineThreads > 0)
        params.engineThreads = opt.engineThreads;
    params.simdMode = opt.simdMode;
    // Partitioned timing walk on the engine threads; bit-identical to
    // the serial walk at any thread count (ALR_PARALLEL_TIMING=1 is
    // the environment equivalent).
    params.parallelTiming = opt.parallelTiming;
    if (opt.scheduleCache > 0)
        params.scheduleCacheCapacity = opt.scheduleCache;
    return params;
}

/** Load @p a into @p acc through the kernel-appropriate path.
 *  @p symgsImage: the matrix came from a SymGs-layout program image. */
void
programAccelerator(Accelerator &acc, const CsrMatrix &a,
                   const Options &opt, bool symgsImage, bool fromImage)
{
    if (fromImage) {
        if (symgsImage)
            acc.loadPde(a);
        else if (isGraphKernel(opt))
            acc.loadGraph(a.transposed()); // image stored adj^T
        else
            acc.loadSpmvOnly(a);
        return;
    }
    if (isGraphKernel(opt))
        acc.loadGraph(a);
    else if (opt.kernel == "spmv" || opt.kernel == "bicgstab" ||
             opt.kernel == "gmres" || opt.kernel == "eigen")
        acc.loadSpmvOnly(a);
    else
        acc.loadPde(a);
}

/** Run opt.kernel once on the programmed accelerator; @p summary gets
 *  the one-line human result. */
void
runKernelOnce(Accelerator &acc, const CsrMatrix &a, const Options &opt,
              std::string *summary)
{
    char line[160];
    line[0] = '\0';
    if (opt.kernel == "spmv") {
        DenseVector x(a.cols(), 1.0);
        DenseVector y = acc.spmv(x);
        Value checksum = 0.0;
        for (Value v : y)
            checksum += v;
        std::snprintf(line, sizeof(line), "spmv checksum %.6g",
                      checksum);
    } else if (opt.kernel == "symgs") {
        DenseVector b(a.rows(), 1.0), x(a.rows(), 0.0);
        acc.symgsSweep(b, x, GsSweep::Symmetric);
        std::snprintf(line, sizeof(line),
                      "symgs sweep done, x[0] = %.6g", x[0]);
    } else if (opt.kernel == "pcg") {
        DenseVector b(a.rows(), 1.0);
        PcgOptions po;
        po.maxIterations = opt.maxIterations;
        PcgResult res = acc.pcg(b, po);
        std::snprintf(line, sizeof(line),
                      "pcg: %s in %d iterations, residual %.3e",
                      res.converged ? "converged" : "NOT converged",
                      res.iterations, res.relResidual);
    } else if (opt.kernel == "bfs") {
        GraphResult res = acc.bfs(opt.source);
        Index reached = 0;
        for (Value d : res.values)
            reached += d != kInf;
        std::snprintf(line, sizeof(line), "bfs: %u reached in %d rounds",
                      reached, res.rounds);
    } else if (opt.kernel == "sssp") {
        GraphResult res = acc.sssp(opt.source);
        std::snprintf(line, sizeof(line), "sssp: %d rounds", res.rounds);
    } else if (opt.kernel == "pr") {
        GraphResult res = acc.pagerank();
        std::snprintf(line, sizeof(line), "pagerank: %d rounds",
                      res.rounds);
    } else if (opt.kernel == "cc") {
        GraphResult res = acc.connectedComponents();
        std::set<long> roots;
        for (Value v : res.values)
            roots.insert(long(v));
        std::snprintf(line, sizeof(line), "components: %zu in %d rounds",
                      roots.size(), res.rounds);
    } else if (opt.kernel == "bicgstab") {
        KrylovResult res = acc.bicgstab(DenseVector(a.rows(), 1.0));
        std::snprintf(line, sizeof(line),
                      "bicgstab: %s in %d iterations, residual %.3e",
                      res.converged ? "converged" : "NOT converged",
                      res.iterations, res.relResidual);
    } else if (opt.kernel == "gmres") {
        KrylovResult res = acc.gmres(DenseVector(a.rows(), 1.0));
        std::snprintf(line, sizeof(line),
                      "gmres: %s in %d iterations, residual %.3e",
                      res.converged ? "converged" : "NOT converged",
                      res.iterations, res.relResidual);
    } else if (opt.kernel == "eigen") {
        auto fn = [&acc](const DenseVector &x) { return acc.spmv(x); };
        LanczosResult res = lanczosWith(fn, a.rows());
        std::snprintf(line, sizeof(line),
                      "lanczos: lambda in [%.6g, %.6g], cond %.3g "
                      "(%d steps)",
                      res.lambdaMin, res.lambdaMax, res.conditionNumber,
                      res.steps);
    } else {
        fatal("unknown kernel '%s'", opt.kernel.c_str());
    }
    if (summary)
        *summary = line;
}

/** The --report utilization summary as a human-readable table. */
void
printUtilization(const Accelerator &acc)
{
    UtilizationReport u = acc.utilization();
    std::printf("\nutilization:\n");
    std::printf("  alu occupancy      %.1f%%\n", 100.0 * u.aluOccupancy);
    std::printf("  reduce tree        %.1f%%\n", 100.0 * u.treeOccupancy);
    std::printf("  memory bandwidth   %.1f%%\n",
                100.0 * u.bandwidthUtilization);
    std::printf("  cache hit rate     %.1f%%\n", 100.0 * u.cacheHitRate);
    std::printf("  cache port busy    %.1f%%\n",
                100.0 * u.cacheTimeFraction);
    std::printf("  sequential         %.1f%% of flops, %.1f%% of cycles\n",
                100.0 * u.sequentialOpFraction,
                100.0 * u.sequentialCycleFraction);
    std::printf("  reconfig hidden    %.1f%%\n",
                100.0 * u.reconfigHiddenFraction);
    std::printf("  roofline           %.3f flop/byte, %.2f of %.2f "
                "attainable GFLOP/s (peak %.2f)\n",
                u.arithmeticIntensity, u.achievedGflops,
                u.attainableGflops, u.peakGflops);
}

/** The --report hotspot table: hottest cycle-accounting buckets. */
void
printHotspots(const Accelerator &acc, size_t k)
{
    std::vector<profile::BucketRow> hot = profile::hotspots(k);
    if (hot.empty())
        return;
    uint64_t total = acc.engine().totalCycles();
    std::printf("\nhotspots (top %zu buckets):\n", hot.size());
    std::printf("  %-8s %9s %-17s %12s %6s %12s\n", "dp", "block_row",
                "cause", "cycles", "%", "bytes");
    for (const profile::BucketRow &r : hot) {
        char row[24];
        if (r.blockRow < 0)
            std::snprintf(row, sizeof(row), "run");
        else
            std::snprintf(row, sizeof(row), "%lld",
                          (long long)r.blockRow);
        std::printf("  %-8s %9s %-17s %12llu %5.1f%% %12llu\n",
                    toString(r.dp), row, profile::toString(r.cause),
                    (unsigned long long)r.cycles,
                    total ? 100.0 * double(r.cycles) / double(total) : 0.0,
                    (unsigned long long)r.bytes);
    }
}

void
printReport(const Accelerator &acc)
{
    AccelReport r = acc.report();
    std::printf("\ncycles               %llu\n",
                (unsigned long long)r.cycles);
    std::printf("time                 %.3f us\n", r.seconds * 1e6);
    std::printf("DRAM traffic         %.1f KB\n",
                r.bytesFromMemory / 1024.0);
    std::printf("bandwidth utilized   %.1f%%\n",
                100.0 * r.bandwidthUtilization);
    std::printf("sequential ops       %.1f%%\n",
                100.0 * r.sequentialOpFraction);
    std::printf("reconfigurations     %.0f\n", r.reconfigurations);
    std::printf("energy               %.3f uJ (dram %.1f%%, sram %.1f%%, "
                "compute %.1f%%, reconfig %.1f%%, static %.1f%%)\n",
                r.energyJoules * 1e6, 100.0 * r.energy.dram / r.energyJoules,
                100.0 * r.energy.sram / r.energyJoules,
                100.0 * r.energy.compute / r.energyJoules,
                100.0 * r.energy.reconfig / r.energyJoules,
                100.0 * r.energy.staticEnergy / r.energyJoules);
}

/**
 * One side of the A/B comparison: fresh accelerator from @p opt's
 * params, the kernel run on (a per-side copy of) the shared matrix,
 * captured as the full-fat report document -- stats, utilization, and
 * cycle-accounting profile always embedded, so the diff can attribute
 * every delta.  The profiler is reset around each side so buckets
 * never bleed across.
 */
std::string
runAbSide(const CsrMatrix &base, const Options &opt)
{
    profile::reset();
    profile::setEnabled(true);
    CsrMatrix a = base;
    if (opt.rcm)
        a = a.permuted(reverseCuthillMcKee(a));
    Accelerator acc(paramsFrom(opt));
    programAccelerator(acc, a, opt, /*symgsImage=*/false,
                       /*fromImage=*/false);
    runKernelOnce(acc, a, opt, nullptr);

    SimReportOptions ro;
    ro.kernel = opt.kernel;
    ro.omega = opt.omega;
    ro.simdMode = opt.simdMode;
    ro.utilization = true;
    ro.stats = true;
    std::ostringstream doc;
    writeSimReportJson(doc, acc, ro);
    profile::setEnabled(false);
    profile::reset();
    return doc.str();
}

/** The --ab driver: baseline vs baseline+overrides, attributed diff. */
int
runAb(const Options &baseline)
{
    if (!baseline.savePath.empty() || !baseline.tracePath.empty() ||
        !baseline.timelinePath.empty() ||
        !baseline.profilePath.empty() ||
        !baseline.profileCsvPath.empty() ||
        !baseline.profileFoldedPath.empty() ||
        baseline.statsInterval > 0)
        fatal("--ab cannot be combined with file-output flags "
              "(--save/--trace/--timeline/--profile*/--stats-interval)");
    if (!baseline.imagePath.empty())
        fatal("--ab needs a rebuildable matrix source (--gen or "
              "--matrix), not a pre-built --image");

    Options variant = baseline;
    variant.ab = false;
    applyArgs(variant, tokenize(baseline.abOverrides), true);

    CsrMatrix a = !baseline.matrixPath.empty()
                      ? CsrMatrix::fromCoo(
                            readMatrixMarketFile(baseline.matrixPath))
                      : generate(baseline.genSpec);

    // Baseline --rcm permutes inside runAbSide per side, so both sides
    // see the same raw matrix here.
    std::string oldDoc = runAbSide(a, baseline);
    std::string newDoc = runAbSide(a, variant);

    json::Parsed po = json::parse(oldDoc);
    json::Parsed pn = json::parse(newDoc);
    if (!po || !pn)
        fatal("internal: A/B report document failed to parse: %s",
              (po ? pn.error : po.error).c_str());

    diff::Document d;
    std::string err;
    if (!diff::diff(po.value, pn.value, &d, &err))
        fatal("A/B diff failed: %s", err.c_str());

    if (baseline.json)
        diff::writeJson(std::cout, d);
    else {
        std::printf("A/B: baseline vs \"%s\"\n",
                    baseline.abOverrides.c_str());
        diff::writeText(std::cout, d);
    }
    std::cout.flush();

    if (!d.conserved) {
        std::fprintf(stderr,
                     "alr_sim: A/B conservation violated (bucket "
                     "deltas do not sum to the cycle delta)\n");
        return 3;
    }
    if (!baseline.failOn.empty()) {
        diff::FailRule rule;
        if (!diff::parseFailRule(baseline.failOn, &rule, &err))
            fatal("%s", err.c_str());
        if (diff::exceeds(d, rule)) {
            std::fprintf(stderr, "alr_sim: A/B diff exceeds %s\n",
                         diff::describe(rule).c_str());
            return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parse(argc, argv);

    // Host-preprocessing thread count: --threads beats ALR_THREADS
    // beats hardware concurrency.
    if (opt.threads > 0)
        ThreadPool::setGlobalThreadCount(opt.threads);

    if (opt.ab)
        return runAb(opt);

    std::ofstream traceFile;
    if (!opt.tracePath.empty()) {
        traceFile.open(opt.tracePath);
        if (!traceFile)
            fatal("cannot create trace file '%s'", opt.tracePath.c_str());
        trace::setSink(&traceFile);
    }

    // Arm the timeline recorder before any kernel runs so the whole
    // modeled execution lands in the trace.
    if (!opt.timelinePath.empty())
        timeline::setEnabled(true);

    // Likewise the cycle-accounting profiler: any profile export, or a
    // --report (which prints the hotspot table), records every run.
    bool profiling = !opt.profilePath.empty() ||
                     !opt.profileCsvPath.empty() ||
                     !opt.profileFoldedPath.empty() || opt.report;
    if (profiling)
        profile::setEnabled(true);

    bool isGraph = isGraphKernel(opt);

    Accelerator acc(paramsFrom(opt));

    // Periodic stat snapshots: the engine samples after each run once
    // the cumulative cycle count crosses an interval boundary.
    std::unique_ptr<stats::StatSnapshotter> snap;
    if (opt.statsInterval > 0) {
        snap = std::make_unique<stats::StatSnapshotter>(
            acc.engine().statGroup(), uint64_t(opt.statsInterval));
        snap->sampleNow(0);
        acc.engine().setSnapshotter(snap.get());
    }

    CsrMatrix a;
    bool fromImage = !opt.imagePath.empty();
    bool symgsImage = false;
    if (fromImage) {
        // Pre-built program image: decode the matrix back for the
        // host-side checks, then reload through the normal path so all
        // kernels are available.
        ProgramImage image = loadProgramImageFile(opt.imagePath);
        a = image.matrix.decode();
        symgsImage = image.matrix.layout() == LdLayout::SymGs;
        if (!opt.json)
            std::printf("program image: omega=%u, %zu tables, "
                        "%zu blocks\n",
                        image.matrix.omega(), image.tables.size(),
                        image.matrix.blocks().size());
    } else {
        a = !opt.matrixPath.empty()
                ? CsrMatrix::fromCoo(readMatrixMarketFile(opt.matrixPath))
                : generate(opt.genSpec);
        if (opt.rcm) {
            auto perm = reverseCuthillMcKee(a);
            a = a.permuted(perm);
            inform("applied RCM reordering");
        }
    }
    programAccelerator(acc, a, opt, symgsImage, fromImage);

    if (!opt.json) {
        PatternStats ps = analyzePattern(a, opt.omega);
        std::printf("matrix: %u x %u, %u nnz, bandwidth %u, block fill "
                    "%.3f\n",
                    a.rows(), a.cols(), a.nnz(), ps.bandwidth,
                    ps.blockDensity);
    }

    if (!opt.savePath.empty()) {
        ProgramImage image =
            isGraph ? buildGraphProgram(a, opt.omega)
            : opt.kernel == "spmv"
                ? buildSpmvProgram(a, opt.omega)
                : buildPdeProgram(a, opt.omega);
        saveProgramImageFile(opt.savePath, image);
        if (!opt.json)
            std::printf("saved program image to %s\n",
                        opt.savePath.c_str());
    }

    std::string summary;
    runKernelOnce(acc, a, opt, &summary);
    if (!opt.json && !summary.empty())
        std::printf("%s\n", summary.c_str());

    // Close the time series with the end-of-run state.
    if (snap)
        snap->sampleNow(acc.engine().totalCycles());

    if (opt.json) {
        std::fflush(stdout); // keep printf output ahead of the document
        SimReportOptions ro;
        ro.kernel = opt.kernel;
        ro.omega = opt.omega;
        ro.simdMode = opt.simdMode;
        ro.utilization = opt.report;
        ro.stats = opt.dumpStats;
        ro.snapshots = snap.get();
        writeSimReportJson(std::cout, acc, ro);
        std::cout.flush();
    } else {
        printReport(acc);
        if (opt.report) {
            printUtilization(acc);
            printHotspots(acc, 10);
        }
        if (opt.dumpStats) {
            std::printf("\n");
            acc.engine().statGroup().dump(std::cout);
        }
        if (snap) {
            std::printf("\n");
            std::cout.flush();
            snap->dumpCsv(std::cout);
        }
    }

    if (profiling) {
        profile::ExportMeta meta{opt.kernel, opt.omega,
                                 acc.engine().totalCycles(),
                                 replay::selectedName(opt.simdMode)};
        auto writeTo = [&](const std::string &path, auto emit,
                           const char *what) {
            if (path.empty())
                return;
            std::ofstream pf(path);
            if (!pf)
                fatal("cannot create %s file '%s'", what, path.c_str());
            emit(pf);
            if (!opt.json)
                std::printf("%s written to %s\n", what, path.c_str());
        };
        writeTo(opt.profilePath,
                [&](std::ostream &os) { profile::exportJson(os, meta); },
                "profile");
        writeTo(opt.profileCsvPath,
                [&](std::ostream &os) { profile::exportCsv(os); },
                "profile heatmap");
        writeTo(opt.profileFoldedPath,
                [&](std::ostream &os) { profile::exportFolded(os); },
                "folded stacks");
    }

    if (!opt.timelinePath.empty()) {
        timeline::setEnabled(false);
        std::ofstream tf(opt.timelinePath);
        if (!tf)
            fatal("cannot create timeline file '%s'",
                  opt.timelinePath.c_str());
        timeline::exportChromeTrace(tf);
        if (!opt.json)
            std::printf("timeline written to %s (%llu events, %llu "
                        "dropped)\n",
                        opt.timelinePath.c_str(),
                        (unsigned long long)timeline::events().size(),
                        (unsigned long long)timeline::dropped());
    }
    if (!opt.tracePath.empty()) {
        trace::setSink(nullptr);
        if (!opt.json)
            std::printf("trace written to %s\n", opt.tracePath.c_str());
    }
    return 0;
}
