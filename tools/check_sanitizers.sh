#!/usr/bin/env bash
# Sanitizer CI pass for the Alrescha repo:
#
#   1. ASan + UBSan build, full ctest suite.
#   2. TSan build, the parallel-pipeline tests (thread pool, parallel
#      encode/convert determinism, multi-engine scale-out) with a high
#      thread count to provoke races.
#   3. The same TSan build re-run over the schedule/profile/pwalk
#      suites with ALR_PARALLEL_TIMING=1, which forces every engine
#      through the partitioned parallel timing walk -- the shadow
#      replay, ordered combine, and level-scheduled D-SymGS all execute
#      on the pool under the race detector.
#
# Usage: tools/check_sanitizers.sh [build-dir-prefix]
# Exits non-zero on any build failure, test failure, or sanitizer report.

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_suite() {
    local dir="$1" flags="$2" label="$3"
    shift 3
    echo "== ${label}: configuring ${dir} =="
    cmake -B "${dir}" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${flags}" \
        -DCMAKE_EXE_LINKER_FLAGS="${flags}" >/dev/null
    echo "== ${label}: building =="
    cmake --build "${dir}" -j "${jobs}" >/dev/null
    echo "== ${label}: testing =="
    (cd "${dir}" && ctest --output-on-failure -j "${jobs}" "$@")
}

# Address + undefined-behaviour pass over the whole suite.
run_suite "${prefix}-asan" \
    "-fsanitize=address,undefined -fno-sanitize-recover=all" \
    "ASan+UBSan"

# Re-run the replay dispatch/specialization suites under every forced
# ISA (same ASan+UBSan build): each pass pushes the auto-dispatched
# engines through a different kernel table, so misaligned vector
# loads, bad function-pointer stamps, or out-of-bounds row records in
# any per-ISA TU trip UBSan here even when auto would pick another
# table.  Unavailable ISAs exercise the fallback path instead -- also
# worth sanitizing.
for isa in scalar sse2 avx2 avx512 neon; do
    echo "== ASan+UBSan (ALR_SIMD_FORCE=${isa}): replay dispatch =="
    (cd "${prefix}-asan" && \
        ALR_SIMD_FORCE="${isa}" ctest --output-on-failure -j "${jobs}" \
            -R 'ReplayDispatch|ReplaySpecialize|ReplayContract|SimdReplay')
done

# Thread-sanitizer pass over the parallel pipeline.  ALR_THREADS=8
# forces real concurrency even on small CI machines.
ALR_THREADS=8 TSAN_OPTIONS="halt_on_error=1" run_suite "${prefix}-tsan" \
    "-fsanitize=thread" \
    "TSan" \
    -R 'ThreadPool|ParallelPipeline|Multi|Mmio'

# Re-run the timing-sensitive suites through the partitioned parallel
# timing walk (same TSan build; ALR_PARALLEL_TIMING=1 flips every
# engine over without touching the tests).  The pwalk suite sweeps pool
# sizes itself; the schedule/profile suites prove the walk stays
# bit-identical while racing.
echo "== TSan (ALR_PARALLEL_TIMING=1): testing parallel timing walk =="
(cd "${prefix}-tsan" && \
    ALR_PARALLEL_TIMING=1 ALR_THREADS=8 TSAN_OPTIONS="halt_on_error=1" \
    ctest --output-on-failure -j "${jobs}" \
        -R 'Pwalk|ScheduleEquivalence|Profile|Multi')

echo "== sanitizers: all passes clean =="
