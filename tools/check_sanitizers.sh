#!/usr/bin/env bash
# Sanitizer CI pass for the Alrescha repo:
#
#   1. ASan + UBSan build, full ctest suite.
#   2. TSan build, the parallel-pipeline tests (thread pool, parallel
#      encode/convert determinism, multi-engine scale-out) with a high
#      thread count to provoke races.
#
# Usage: tools/check_sanitizers.sh [build-dir-prefix]
# Exits non-zero on any build failure, test failure, or sanitizer report.

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_suite() {
    local dir="$1" flags="$2" label="$3"
    shift 3
    echo "== ${label}: configuring ${dir} =="
    cmake -B "${dir}" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${flags}" \
        -DCMAKE_EXE_LINKER_FLAGS="${flags}" >/dev/null
    echo "== ${label}: building =="
    cmake --build "${dir}" -j "${jobs}" >/dev/null
    echo "== ${label}: testing =="
    (cd "${dir}" && ctest --output-on-failure -j "${jobs}" "$@")
}

# Address + undefined-behaviour pass over the whole suite.
run_suite "${prefix}-asan" \
    "-fsanitize=address,undefined -fno-sanitize-recover=all" \
    "ASan+UBSan"

# Thread-sanitizer pass over the parallel pipeline.  ALR_THREADS=8
# forces real concurrency even on small CI machines.
ALR_THREADS=8 TSAN_OPTIONS="halt_on_error=1" run_suite "${prefix}-tsan" \
    "-fsanitize=thread" \
    "TSan" \
    -R 'ThreadPool|ParallelPipeline|Multi|Mmio'

echo "== sanitizers: all passes clean =="
