#!/usr/bin/env python3
"""Validate an alr_sim cycle-accounting profile.

Checks a profile document (alr_sim --profile out.json, or the "profile"
sub-object of an alr_sim --json document) against its schema and the
conservation contract:

- the document must carry version provenance, the run meta block
  (kernel, omega, total_cycles), the bucket list, and the critical-path
  section;
- every bucket needs dp/block_row/cause/cycles/bytes with a known cause
  label, and the list must be sorted (dp, block_row, cause) with no
  duplicate keys;
- conservation is exact, not approximate: attributed_cycles must equal
  both the sum over buckets and the run's total_cycles, and
  attributed_bytes must equal the byte sum over buckets;
- the critical-path section needs the longest-chain fields and
  per-block-row rows whose wait cycles sum to the dsymgs_wait buckets.

usage: check_profile.py PROFILE.json [--kernel NAME]

Exit status 0 when everything validates, 1 otherwise.
"""

import argparse
import json
import sys

CAUSES = (
    "stream",
    "fcu_compute",
    "tree_drain",
    "reconfig_hidden",
    "reconfig_exposed",
    "cache_miss",
    "cache_access",
    "dsymgs_wait",
)

DPS = ("GEMV", "D-SymGS", "D-BFS", "D-SSSP", "D-PR")

# Every JSON artifact the simulator emits is stamped with this version;
# a mismatch means the document was produced by an incompatible build.
SCHEMA_VERSION = 1


def fail(msg):
    raise SystemExit(f"FAIL: {msg}")


def check_schema_version(path, doc):
    v = doc.get("schema_version")
    if v != SCHEMA_VERSION:
        fail(f"{path}: schema_version {v!r}, expected {SCHEMA_VERSION}")


def check_profile(path, doc, kernel=None):
    check_schema_version(path, doc)
    for key in ("version", "kernel", "omega", "total_cycles",
                "attributed_cycles", "attributed_bytes", "runs",
                "buckets", "critical_path"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    for key in ("git", "simd_build", "simd_runtime",
                "omega_specializations"):
        if key not in doc["version"]:
            fail(f"{path}: version missing '{key}'")
    if kernel is not None and doc["kernel"] != kernel:
        fail(f"{path}: kernel '{doc['kernel']}', expected '{kernel}'")
    if doc["omega"] <= 0:
        fail(f"{path}: non-positive omega")
    if doc["runs"] <= 0:
        fail(f"{path}: no runs recorded")

    cause_rank = {c: i for i, c in enumerate(CAUSES)}
    dp_rank = {d: i for i, d in enumerate(DPS)}
    cycle_sum = 0
    byte_sum = 0
    wait_sum = 0
    prev_key = None
    for i, b in enumerate(doc["buckets"]):
        where = f"{path}: bucket {i}"
        for key in ("dp", "block_row", "cause", "cycles", "bytes"):
            if key not in b:
                fail(f"{where}: missing '{key}'")
        if b["dp"] not in dp_rank:
            fail(f"{where}: unknown dp '{b['dp']}'")
        if b["cause"] not in cause_rank:
            fail(f"{where}: unknown cause '{b['cause']}'")
        if b["block_row"] < -1:
            fail(f"{where}: block_row below -1")
        if b["cycles"] < 0 or b["bytes"] < 0:
            fail(f"{where}: negative cycles/bytes")
        if b["cycles"] == 0 and b["bytes"] == 0:
            fail(f"{where}: empty bucket exported")
        sort_key = (dp_rank[b["dp"]], b["block_row"],
                    cause_rank[b["cause"]])
        if prev_key is not None and sort_key <= prev_key:
            fail(f"{where}: buckets not sorted or duplicate key")
        prev_key = sort_key
        cycle_sum += b["cycles"]
        byte_sum += b["bytes"]
        if b["cause"] == "dsymgs_wait":
            wait_sum += b["cycles"]

    # The conservation contract: exact equality, no tolerance.
    if cycle_sum != doc["attributed_cycles"]:
        fail(f"{path}: bucket cycle sum {cycle_sum} != attributed_cycles "
             f"{doc['attributed_cycles']}")
    if cycle_sum != doc["total_cycles"]:
        fail(f"{path}: attributed cycles {cycle_sum} != total_cycles "
             f"{doc['total_cycles']} (conservation violated)")
    if byte_sum != doc["attributed_bytes"]:
        fail(f"{path}: bucket byte sum {byte_sum} != attributed_bytes "
             f"{doc['attributed_bytes']}")

    cp = doc["critical_path"]
    for key in ("longest_chain_cycles", "longest_chain_rows",
                "per_block_row"):
        if key not in cp:
            fail(f"{path}: critical_path missing '{key}'")
    if len(cp["longest_chain_rows"]) != 2:
        fail(f"{path}: longest_chain_rows is not a [first, last] pair")
    row_wait = 0
    prev_row = None
    for r in cp["per_block_row"]:
        where = f"{path}: critical_path row {r.get('block_row', '?')}"
        for key in ("block_row", "chains", "chain_cycles", "wait_cycles",
                    "start_stall_cycles", "slack_cycles",
                    "dep_bound_chains"):
            if key not in r:
                fail(f"{where}: missing '{key}'")
        if prev_row is not None and r["block_row"] <= prev_row:
            fail(f"{where}: rows not sorted by block_row")
        prev_row = r["block_row"]
        if r["dep_bound_chains"] > r["chains"]:
            fail(f"{where}: more dependence-bound chains than chains")
        row_wait += r["wait_cycles"]
    if row_wait != wait_sum:
        fail(f"{path}: critical-path wait sum {row_wait} != dsymgs_wait "
             f"bucket sum {wait_sum}")
    if cp["per_block_row"] and cp["longest_chain_cycles"] <= 0:
        fail(f"{path}: chains recorded but longest_chain_cycles is 0")

    print(f"{path}: ok (kernel={doc['kernel']}, "
          f"{len(doc['buckets'])} buckets, "
          f"{cycle_sum} cycles conserved, "
          f"{len(cp['per_block_row'])} critical-path rows)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("profile", help="profile JSON from --profile")
    ap.add_argument("--kernel", help="expected kernel name")
    args = ap.parse_args()

    with open(args.profile) as f:
        doc = json.load(f)
    # Accept a full --json document with an embedded profile, too.  The
    # outer sim document carries its own schema_version stamp.
    if "profile" in doc and "buckets" not in doc:
        check_schema_version(args.profile, doc)
        doc = doc["profile"]
    check_profile(args.profile, doc, args.kernel)
    return 0


if __name__ == "__main__":
    sys.exit(main())
