/**
 * @file
 * alr_validate: run every kernel on every dataset of both suites
 * through the cycle-level engine and check the numbers against the
 * independent reference implementations.  The release gate: exits
 * non-zero if any cell fails.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "datasets/suites.hh"
#include "kernels/blas1.hh"
#include "kernels/graph.hh"
#include "kernels/spmv.hh"
#include "kernels/symgs.hh"

using namespace alr;

namespace {

int failures = 0;

const char *
verdict(bool ok)
{
    if (!ok)
        ++failures;
    return ok ? "ok" : "FAIL";
}

bool
close(const DenseVector &a, const DenseVector &b, Value tol)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::isinf(a[i]) != std::isinf(b[i]))
            return false;
        if (!std::isinf(a[i]) && std::abs(a[i] - b[i]) > tol)
            return false;
    }
    return true;
}

} // namespace

int
main()
{
    std::printf("alr_validate: engine vs reference on both suites\n\n");

    std::printf("%-20s %-6s %-6s %-6s\n", "scientific", "spmv", "symgs",
                "pcg");
    for (const Dataset &d : scientificSuite()) {
        Accelerator acc;
        acc.loadPde(d.matrix);
        Index n = d.matrix.rows();

        Rng rng(1);
        DenseVector x(n);
        for (auto &e : x)
            e = rng.nextDouble(-1.0, 1.0);

        bool spmv_ok = close(acc.spmv(x), spmv(d.matrix, x), 1e-9);

        DenseVector b(n, 1.0), xa(n, 0.0), xr(n, 0.0);
        acc.symgsSweep(b, xa, GsSweep::Symmetric);
        gaussSeidelSweep(d.matrix, b, xr, GsSweep::Symmetric);
        bool gs_ok = close(xa, xr, 1e-8);

        PcgOptions opts;
        opts.tolerance = 1e-8;
        opts.maxIterations = 400;
        bool pcg_ok = acc.pcg(b, opts).converged;

        std::printf("%-20s %-6s %-6s %-6s\n", d.name.c_str(),
                    verdict(spmv_ok), verdict(gs_ok), verdict(pcg_ok));
    }

    std::printf("\n%-20s %-6s %-6s %-6s %-6s\n", "graph", "bfs", "sssp",
                "pr", "cc");
    for (const Dataset &d : graphSuite()) {
        Accelerator acc;
        acc.loadGraph(d.matrix);

        bool bfs_ok =
            acc.bfs(0).values == bfsReference(d.matrix, 0);
        bool sssp_ok = close(acc.sssp(0).values,
                             ssspReference(d.matrix, 0), 1e-8);
        PageRankOptions prOpts;
        prOpts.maxIterations = 40;
        prOpts.tolerance = 1e-7;
        bool pr_ok = close(acc.pagerank(prOpts).values,
                           pagerank(d.matrix, prOpts), 1e-5);
        // Min-label components only equal union-find on symmetric
        // graphs; run it on the symmetrized pattern.
        bool cc_ok = true;
        if (d.matrix.isSymmetric(0.0)) {
            cc_ok = acc.connectedComponents().values ==
                    connectedComponentsReference(d.matrix);
        }

        std::printf("%-20s %-6s %-6s %-6s %-6s\n", d.name.c_str(),
                    verdict(bfs_ok), verdict(sssp_ok), verdict(pr_ok),
                    verdict(cc_ok));
    }

    std::printf("\n%s (%d failures)\n",
                failures == 0 ? "ALL KERNELS VALIDATED" : "VALIDATION FAILED",
                failures);
    return failures == 0 ? 0 : 1;
}
