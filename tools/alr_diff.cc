/**
 * @file
 * alr_diff: cross-run regression attribution for the observability
 * artifacts.
 *
 * Point it at any two JSON artifacts the repo emits -- alr_sim --json
 * reports, --profile cycle-accounting profiles, BENCH_*.json baselines,
 * metrics snapshots -- and it aligns them and explains the delta:
 * which rows, which (data-path x block-row x cause) buckets, which
 * stats, which energy components, and which build provenance changed.
 *
 *   alr_diff old_profile.json new_profile.json
 *   alr_diff BENCH_spmv.json build-rel/BENCH_spmv.json \
 *            --fail-on 'cycles>0' --json diff.json --folded diff.folded
 *
 * Exit codes (CI contract):
 *   0  within threshold (or no --fail-on and diff computed)
 *   1  --fail-on rule exceeded
 *   2  usage / unreadable / unparseable / incomparable artifacts
 *   3  conservation violated (bucket deltas do not sum to the total
 *      cycle delta -- an emitter bug, always worth failing loudly)
 *
 * --folded F writes two flamegraph.pl-compatible stacks: F.pos
 * (regressions) and F.neg (improvements), magnitudes only, so both
 * render with the stock tooling as a differential flamegraph pair.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "alrescha/sim/diff.hh"
#include "common/json.hh"

using namespace alr;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: alr_diff OLD.json NEW.json [options]\n"
        "  OLD/NEW: any two artifacts of the same kind -- alr_sim\n"
        "           --json report, --profile output, BENCH_*.json,\n"
        "           or a metrics snapshot\n"
        "  --json F      machine-readable diff document to F (- for\n"
        "                stdout, replacing the text report)\n"
        "  --folded F    differential flamegraph stacks to F.pos\n"
        "                (regressions) and F.neg (improvements)\n"
        "  --fail-on R   exit 1 when the diff exceeds METRIC>NUM[%%]\n"
        "                (metric: cycles|bytes|energy; %% is relative\n"
        "                to the old per-row value), e.g. 'cycles>0.1%%'\n"
        "  --top N       rows shown per ranked table (default 20)\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string oldPath, newPath, jsonPath, foldedPath, failOn;
    long topK = 20;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--json")
            jsonPath = next();
        else if (arg == "--folded")
            foldedPath = next();
        else if (arg == "--fail-on")
            failOn = next();
        else if (arg == "--top") {
            topK = std::atol(next().c_str());
            if (topK <= 0)
                usage();
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            usage();
        } else if (oldPath.empty()) {
            oldPath = arg;
        } else if (newPath.empty()) {
            newPath = arg;
        } else {
            usage();
        }
    }
    if (oldPath.empty() || newPath.empty())
        usage();

    diff::FailRule rule;
    std::string err;
    if (!failOn.empty() && !diff::parseFailRule(failOn, &rule, &err)) {
        std::fprintf(stderr, "alr_diff: %s\n", err.c_str());
        return 2;
    }

    json::Parsed oldDoc = json::parseFile(oldPath);
    if (!oldDoc) {
        std::fprintf(stderr, "alr_diff: %s\n", oldDoc.error.c_str());
        return 2;
    }
    json::Parsed newDoc = json::parseFile(newPath);
    if (!newDoc) {
        std::fprintf(stderr, "alr_diff: %s\n", newDoc.error.c_str());
        return 2;
    }

    diff::Document d;
    if (!diff::diff(oldDoc.value, newDoc.value, &d, &err)) {
        std::fprintf(stderr, "alr_diff: %s vs %s: %s\n",
                     oldPath.c_str(), newPath.c_str(), err.c_str());
        return 2;
    }

    if (jsonPath == "-") {
        diff::writeJson(std::cout, d);
    } else {
        if (!jsonPath.empty()) {
            std::ofstream jf(jsonPath);
            if (!jf) {
                std::fprintf(stderr, "alr_diff: cannot write %s\n",
                             jsonPath.c_str());
                return 2;
            }
            diff::writeJson(jf, d);
        }
        std::printf("diff %s -> %s\n", oldPath.c_str(),
                    newPath.c_str());
        diff::writeText(std::cout, d, size_t(topK));
    }
    std::cout.flush();

    if (!foldedPath.empty()) {
        std::ofstream pos(foldedPath + ".pos");
        std::ofstream neg(foldedPath + ".neg");
        if (!pos || !neg) {
            std::fprintf(stderr, "alr_diff: cannot write %s.{pos,neg}\n",
                         foldedPath.c_str());
            return 2;
        }
        diff::writeFolded(pos, neg, d);
    }

    if (!d.conserved) {
        std::fprintf(stderr,
                     "alr_diff: conservation violated: bucket deltas "
                     "do not sum to the total cycle delta\n");
        return 3;
    }
    if (!failOn.empty() && diff::exceeds(d, rule)) {
        std::fprintf(stderr, "alr_diff: diff exceeds %s\n",
                     diff::describe(rule).c_str());
        return 1;
    }
    return 0;
}
