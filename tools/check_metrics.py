#!/usr/bin/env python3
"""Validate alr_serve observability artifacts.

Checks a metrics-registry snapshot (alr_serve --metrics-out m.json)
and, optionally, the serve report (alr_serve --json > serve.json)
against their documented schemas and cross-document invariants:

- the snapshot must json.load, carry a positive "snapshot" sequence
  number and a "metrics" list; every metric needs name/type/labels,
  counters/gauges a numeric value, histograms count/sum/min/max/mean,
  a "window" block with exact percentiles, and monotone non-empty
  "buckets";
- the Prometheus sibling (m.json.prom), when present, must expose one
  value line per counter/gauge and cumulative le-bucket lines ending
  in '+Inf' per histogram, with _count matching the JSON count;
- against the report: the latency and queue-wait histogram counts must
  equal the completed request count (and the per-matrix label sets
  must sum to it), SLO good + bad must equal completed, queue wait can
  never exceed end-to-end latency (sum and max), and the exact
  percentiles must be monotone p50 <= p95 <= p99 <= p99.9.

usage: check_metrics.py METRICS.json [--prom METRICS.prom]
                        [--report SERVE.json]

Exit status 0 when everything validates, 1 otherwise.
"""

import argparse
import json
import re
import sys

TYPES = ("counter", "gauge", "histogram")
REL_TOL = 1e-9

# Every JSON artifact the simulator emits is stamped with this version;
# a mismatch means the document was produced by an incompatible build.
SCHEMA_VERSION = 1


def fail(msg):
    raise SystemExit(f"FAIL: {msg}")


def check_schema_version(path, doc):
    v = doc.get("schema_version")
    if v != SCHEMA_VERSION:
        fail(f"{path}: schema_version {v!r}, expected {SCHEMA_VERSION}")


def label_key(labels):
    return tuple(sorted(labels.items()))


def check_histogram(m, where):
    for key in ("count", "sum", "min", "max", "mean"):
        if not isinstance(m.get(key), (int, float)):
            fail(f"{where}: histogram missing numeric '{key}'")
    window = m.get("window")
    if not isinstance(window, dict):
        fail(f"{where}: histogram missing 'window'")
    for key in ("count", "p50", "p95", "p99", "p99.9"):
        if not isinstance(window.get(key), (int, float)):
            fail(f"{where}: window missing numeric '{key}'")
    if window["count"] > m["count"]:
        fail(f"{where}: window count exceeds cumulative count")
    buckets = m.get("buckets")
    if not isinstance(buckets, dict):
        fail(f"{where}: histogram missing 'buckets'")
    if m["count"] > 0:
        if not buckets:
            fail(f"{where}: non-empty histogram has no buckets")
        total = sum(buckets.values())
        if total != m["count"]:
            fail(f"{where}: bucket counts sum to {total}, "
                 f"count is {m['count']}")
    if m["count"] > 0 and not (m["min"] <= m["mean"] <= m["max"]):
        fail(f"{where}: min <= mean <= max violated")


def load_metrics(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    check_schema_version(path, doc)
    if not isinstance(doc.get("snapshot"), int) or doc["snapshot"] < 1:
        fail(f"{path}: missing positive 'snapshot' sequence number")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail(f"{path}: missing non-empty 'metrics' list")
    by_name = {}
    for m in metrics:
        name = m.get("name")
        if not name:
            fail(f"{path}: metric without a name")
        where = f"{path}: {name}"
        if m.get("type") not in TYPES:
            fail(f"{where}: bad type {m.get('type')!r}")
        labels = m.get("labels")
        if not isinstance(labels, dict):
            fail(f"{where}: missing 'labels' object")
        if m["type"] == "histogram":
            check_histogram(m, where)
        elif not isinstance(m.get("value"), (int, float)):
            fail(f"{where}: missing numeric 'value'")
        family = by_name.setdefault(name, {})
        key = label_key(labels)
        if key in family:
            fail(f"{where}: duplicate label set {labels}")
        family[key] = m
    return by_name


def metric(by_name, name, labels=()):
    family = by_name.get(name)
    if family is None:
        fail(f"required metric '{name}' is absent")
    m = family.get(tuple(sorted(labels)))
    if m is None:
        fail(f"metric '{name}' has no label set {dict(labels)}")
    return m


def check_prometheus(path, by_name):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        fail(f"{path}: {e}")
    for family_name, family in by_name.items():
        for key, m in family.items():
            if m["type"] == "histogram":
                pattern = rf'^{re.escape(family_name)}_count(\{{[^}}]*\}})? '
                counts = [
                    line for line in text.splitlines()
                    if re.match(pattern, line)
                ]
                if not counts:
                    fail(f"{path}: no {family_name}_count line")
                bucket_inf = rf'^{re.escape(family_name)}_bucket.*le="\+Inf"'
                if not any(re.match(bucket_inf, line)
                           for line in text.splitlines()):
                    fail(f"{path}: no +Inf bucket for {family_name}")
            else:
                if f"# TYPE {family_name} {m['type']}" not in text:
                    fail(f"{path}: no TYPE line for {family_name}")


def check_percentiles(block, where):
    order = [block[k] for k in ("p50", "p95", "p99", "p99.9")]
    if order != sorted(order):
        fail(f"{where}: percentiles not monotone: {order}")


def check_report(report_path, by_name):
    try:
        with open(report_path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{report_path}: {e}")
    check_schema_version(report_path, report)

    completed = report.get("completed")
    if not isinstance(completed, int):
        fail(f"{report_path}: missing integer 'completed'")

    lat = metric(by_name, "serve_latency_us")
    wait = metric(by_name, "serve_queue_wait_us")
    if lat["count"] != completed:
        fail(f"latency histogram count {lat['count']} != "
             f"completed {completed}")
    if wait["count"] != completed:
        fail(f"queue-wait histogram count {wait['count']} != "
             f"completed {completed}")
    done = metric(by_name, "serve_requests_completed")
    if done["value"] != completed:
        fail(f"serve_requests_completed {done['value']} != "
             f"completed {completed}")

    per_matrix = sum(
        m["count"]
        for key, m in by_name.get("serve_latency_us", {}).items() if key)
    if per_matrix != completed:
        fail(f"per-matrix latency counts sum to {per_matrix}, "
             f"completed is {completed}")

    # Per-request wait <= latency implies both the sums and the maxima
    # order the same way (max wait belongs to *some* request whose
    # latency bounds it).
    tol = 1 + REL_TOL
    if wait["sum"] > lat["sum"] * tol:
        fail(f"queue-wait sum {wait['sum']} exceeds latency sum "
             f"{lat['sum']}")
    if wait["max"] > lat["max"] * tol:
        fail(f"queue-wait max {wait['max']} exceeds latency max "
             f"{lat['max']}")

    slo = report.get("slo")
    if not isinstance(slo, dict):
        fail(f"{report_path}: missing 'slo' block")
    total = slo.get("total", {})
    if total.get("good", -1) + total.get("bad", -1) != completed:
        fail(f"slo good {total.get('good')} + bad {total.get('bad')} "
             f"!= completed {completed}")
    check_percentiles(total["latency_us"], "slo.total")
    good = bad = 0
    for row in slo.get("per_matrix", []):
        good += row["good"]
        bad += row["bad"]
        if row["requests"]:
            check_percentiles(row["latency_us"],
                              f"slo.per_matrix[{row['name']}]")
    if good + bad != completed:
        fail(f"per-matrix slo counts sum to {good}+{bad}, "
             f"completed is {completed}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("metrics", help="alr_serve --metrics-out snapshot")
    ap.add_argument("--prom", help="Prometheus text sibling to validate")
    ap.add_argument("--report", help="alr_serve --json report to "
                    "cross-check invariants against")
    args = ap.parse_args()

    by_name = load_metrics(args.metrics)
    if args.prom:
        check_prometheus(args.prom, by_name)
    if args.report:
        check_report(args.report, by_name)

    families = len(by_name)
    count = sum(len(f) for f in by_name.values())
    print(f"OK: {args.metrics}: {count} metrics in {families} families"
          + (", prometheus ok" if args.prom else "")
          + (", report invariants ok" if args.report else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
