/**
 * @file
 * Serving-plane metrics registry (ISSUE 9): counter/gauge/histogram
 * registration and identity, JSON + Prometheus exposition, atomic
 * snapshot publication, and the exact-percentile helper -- including
 * the documented agreement between stats::Distribution's log2-bucket
 * percentile and exact order statistics at bucket boundaries.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hh"
#include "common/stats.hh"

using namespace alr;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(MetricsRegistry, FindOrCreateReturnsStableIdentity)
{
    metrics::Registry reg;
    metrics::Counter &a = reg.counter("reqs", "served requests");
    metrics::Counter &b = reg.counter("reqs", "served requests");
    EXPECT_EQ(&a, &b);
    a.add(3.0);
    ++b;
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_EQ(reg.size(), 1u);

    // Distinct label sets are distinct metrics in one family.
    metrics::Counter &l1 =
        reg.counter("reqs", "served requests", {{"matrix", "a"}});
    metrics::Counter &l2 =
        reg.counter("reqs", "served requests", {{"matrix", "b"}});
    EXPECT_NE(&l1, &l2);
    EXPECT_NE(&l1, &a);
    EXPECT_EQ(reg.size(), 3u);

    double out = 0.0;
    EXPECT_TRUE(reg.lookup("reqs", {}, &out));
    EXPECT_DOUBLE_EQ(out, 4.0);
    EXPECT_FALSE(reg.lookup("reqs", {{"matrix", "c"}}, &out));
    EXPECT_FALSE(reg.lookup("absent", {}, &out));
}

TEST(MetricsRegistry, GaugeSetsAndHistogramObserves)
{
    metrics::Registry reg;
    metrics::Gauge &depth = reg.gauge("depth", "queue depth");
    depth.set(7.0);
    depth.add(-2.0);
    EXPECT_DOUBLE_EQ(depth.value(), 5.0);

    metrics::Histogram &h = reg.histogram("lat", "latency");
    for (int i = 1; i <= 100; ++i)
        h.observe(double(i));
    EXPECT_EQ(h.count(), 100u);
    stats::Distribution d = h.distribution();
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    std::vector<double> window = h.window();
    ASSERT_EQ(window.size(), 100u);
    EXPECT_DOUBLE_EQ(window.front(), 1.0);
    EXPECT_DOUBLE_EQ(window.back(), 100.0);
}

TEST(MetricsRegistry, HistogramWindowIsBoundedAndKeepsTheTail)
{
    metrics::Histogram h;
    const size_t n = metrics::Histogram::kWindow + 100;
    for (size_t i = 0; i < n; ++i)
        h.observe(double(i));
    EXPECT_EQ(h.count(), n);
    std::vector<double> window = h.window();
    ASSERT_EQ(window.size(), metrics::Histogram::kWindow);
    // Oldest first, and only the most recent kWindow survive.
    EXPECT_DOUBLE_EQ(window.front(), 100.0);
    EXPECT_DOUBLE_EQ(window.back(), double(n - 1));
}

TEST(MetricsRegistry, ConcurrentObserversLoseNothing)
{
    metrics::Registry reg;
    metrics::Counter &c = reg.counter("n", "count");
    metrics::Histogram &h = reg.histogram("v", "values");
    constexpr int kThreads = 4, kPer = 2000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&] {
            for (int i = 0; i < kPer; ++i) {
                c.add(1.0);
                h.observe(1.0);
            }
        });
    for (std::thread &t : pool)
        t.join();
    EXPECT_DOUBLE_EQ(c.value(), double(kThreads * kPer));
    EXPECT_EQ(h.count(), uint64_t(kThreads * kPer));
}

TEST(MetricsRegistry, JsonExposesSchemaFields)
{
    metrics::Registry reg;
    reg.counter("reqs", "served requests").add(5.0);
    reg.gauge("depth", "queue depth", {{"matrix", "em-sphere"}}).set(2.0);
    metrics::Histogram &h = reg.histogram("lat_us", "latency");
    h.observe(3.0);
    h.observe(9.0);

    std::ostringstream os;
    reg.writeJson(os);
    std::string doc = os.str();
    EXPECT_NE(doc.find("\"snapshot\""), std::string::npos);
    EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"reqs\""), std::string::npos);
    EXPECT_NE(doc.find("\"type\": \"counter\""), std::string::npos);
    EXPECT_NE(doc.find("\"type\": \"gauge\""), std::string::npos);
    EXPECT_NE(doc.find("\"type\": \"histogram\""), std::string::npos);
    EXPECT_NE(doc.find("\"matrix\": \"em-sphere\""), std::string::npos);
    EXPECT_NE(doc.find("\"window\""), std::string::npos);
    EXPECT_NE(doc.find("\"buckets\""), std::string::npos);
    EXPECT_NE(doc.find("\"p99.9\""), std::string::npos);
}

TEST(MetricsRegistry, PrometheusExposesFamiliesAndCumulativeBuckets)
{
    metrics::Registry reg;
    reg.counter("serve_reqs", "served requests").add(5.0);
    metrics::Histogram &h = reg.histogram("serve_lat", "latency");
    h.observe(3.0);  // bucket upper edge 4
    h.observe(9.0);  // bucket upper edge 16

    std::ostringstream os;
    reg.writePrometheus(os);
    std::string doc = os.str();
    EXPECT_NE(doc.find("# TYPE serve_reqs counter"), std::string::npos);
    EXPECT_NE(doc.find("serve_reqs 5"), std::string::npos);
    EXPECT_NE(doc.find("# TYPE serve_lat histogram"), std::string::npos);
    // Cumulative le buckets: the 16-edge line counts both samples, and
    // +Inf closes the histogram.
    EXPECT_NE(doc.find("serve_lat_bucket{le=\"4\"} 1"), std::string::npos);
    EXPECT_NE(doc.find("serve_lat_bucket{le=\"16\"} 2"),
              std::string::npos);
    EXPECT_NE(doc.find("serve_lat_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(doc.find("serve_lat_count 2"), std::string::npos);
    EXPECT_NE(doc.find("serve_lat_sum 12"), std::string::npos);
}

TEST(MetricsRegistry, SnapshotFilesArePublishedAtomically)
{
    metrics::Registry reg;
    reg.counter("reqs", "served requests").add(1.0);

    std::string dir = ::testing::TempDir();
    std::string json = dir + "/metrics_test.json";
    std::string prom = dir + "/metrics_test.prom";
    ASSERT_TRUE(reg.writeSnapshotFiles(json, prom));
    EXPECT_EQ(reg.snapshots(), 1u);
    ASSERT_TRUE(reg.writeSnapshotFiles(json, prom));
    EXPECT_EQ(reg.snapshots(), 2u);

    std::string doc = slurp(json);
    EXPECT_NE(doc.find("\"snapshot\": 2"), std::string::npos);
    EXPECT_NE(slurp(prom).find("# TYPE reqs counter"), std::string::npos);
    // The write-then-rename protocol leaves no temp files behind.
    EXPECT_FALSE(std::ifstream(json + ".tmp").good());
    EXPECT_FALSE(std::ifstream(prom + ".tmp").good());
    std::remove(json.c_str());
    std::remove(prom.c_str());
}

TEST(ExactPercentile, MatchesOrderStatisticInterpolation)
{
    std::vector<double> s = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(metrics::exactPercentile(s, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(metrics::exactPercentile(s, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(metrics::exactPercentile(s, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(metrics::exactPercentile(s, 25.0), 1.75);
    // Order does not matter; the helper sorts a copy.
    std::vector<double> shuffled = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(metrics::exactPercentile(shuffled, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(metrics::exactPercentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(metrics::exactPercentile({7.0}, 99.0), 7.0);
}

TEST(PercentileAgreement, ExactAtDegenerateAndBoundaryCases)
{
    // A single-valued sample set: the bucketed percentile clamps its
    // bucket's upper edge to [min, max] == {v}, so it agrees exactly
    // with the order statistic at every p -- including at a power of
    // two, which sits on a bucket boundary.
    for (double v : {1.0, 8.0, 1024.0, 3.5}) {
        stats::Distribution d;
        std::vector<double> s(17, v);
        for (double x : s)
            d.sample(x);
        for (double p : {0.0, 10.0, 50.0, 99.0, 100.0})
            EXPECT_DOUBLE_EQ(d.percentile(p),
                             metrics::exactPercentile(s, p))
                << "v=" << v << " p=" << p;
    }

    // The endpoints bypass the buckets entirely (exact extrema), so
    // they agree for any sample set.
    stats::Distribution d;
    std::vector<double> s = {3.0, 17.0, 100.0, 1000.0, 4096.0};
    for (double x : s)
        d.sample(x);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), metrics::exactPercentile(s, 0.0));
    EXPECT_DOUBLE_EQ(d.percentile(100.0),
                     metrics::exactPercentile(s, 100.0));
}

TEST(PercentileAgreement, BucketedStaysWithinLog2ResolutionOfExact)
{
    // Log-spaced samples, one per bucket: the bucketed percentile may
    // land one rank away from the interpolated order statistic and
    // reports its bucket's upper edge, so it tracks the exact value
    // within the log2 bucket resolution -- never wildly off, never
    // below half the exact value.
    std::vector<double> s;
    for (int i = 0; i < 12; ++i)
        s.push_back(1.5 * std::ldexp(1.0, i));
    stats::Distribution d;
    for (double x : s)
        d.sample(x);
    double prev = 0.0;
    for (double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
        double exact = metrics::exactPercentile(s, p);
        double approx = d.percentile(p);
        EXPECT_GE(approx, exact / 2.0) << "p=" << p;
        EXPECT_LE(approx, exact * 4.0) << "p=" << p;
        EXPECT_GE(approx, prev) << "p=" << p;
        prev = approx;
    }
}
