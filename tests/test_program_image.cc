/**
 * @file
 * Program-image tests: binary round trips for the locally-dense matrix
 * and configuration tables, corrupt-input rejection, and end-to-end
 * execution from a reloaded image.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "alrescha/program_image.hh"
#include "alrescha/sim/engine.hh"
#include "common/random.hh"
#include "kernels/spmv.hh"
#include "kernels/symgs.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

TEST(ProgramImage, MatrixSerializationRoundTrip)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSpd(60, 5, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);

    std::stringstream ss;
    ld.serialize(ss);
    LocallyDenseMatrix back = LocallyDenseMatrix::deserialize(ss);
    EXPECT_EQ(back.decode(), a);
    EXPECT_EQ(back.omega(), ld.omega());
    EXPECT_EQ(back.layout(), ld.layout());
    EXPECT_EQ(back.stream(), ld.stream());
    EXPECT_EQ(back.diagonal(), ld.diagonal());
}

TEST(ProgramImage, TableSerializationRoundTrip)
{
    Rng rng(2);
    CsrMatrix a = gen::banded(64, 6, 0.8, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    ConfigTable t = ConfigTable::convert(KernelType::SymGS, ld, true,
                                         GsSweep::Backward);

    std::stringstream ss;
    t.serialize(ss);
    ConfigTable back = ConfigTable::deserialize(ss);
    EXPECT_EQ(back.kernel(), KernelType::SymGS);
    EXPECT_EQ(back.direction(), GsSweep::Backward);
    EXPECT_TRUE(back.reordered());
    EXPECT_EQ(back.entries().size(), t.entries().size());
    for (size_t i = 0; i < t.entries().size(); ++i) {
        EXPECT_EQ(back.entries()[i].dp, t.entries()[i].dp);
        EXPECT_EQ(back.entries()[i].blockId, t.entries()[i].blockId);
    }
}

TEST(ProgramImage, FullImageRoundTrip)
{
    Rng rng(3);
    CsrMatrix a = gen::banded(96, 8, 0.7, rng);
    ProgramImage image = buildPdeProgram(a, 8);
    ASSERT_EQ(image.tables.size(), 3u);

    std::stringstream ss;
    saveProgramImage(ss, image);
    ProgramImage back = loadProgramImage(ss);
    EXPECT_EQ(back.matrix.decode(), a);
    ASSERT_EQ(back.tables.size(), 3u);
    EXPECT_EQ(back.tables[0].direction(), GsSweep::Forward);
    EXPECT_EQ(back.tables[1].direction(), GsSweep::Backward);
    EXPECT_EQ(back.tables[2].kernel(), KernelType::SpMV);
}

TEST(ProgramImage, ReloadedImageExecutesIdentically)
{
    Rng rng(4);
    CsrMatrix a = gen::banded(72, 5, 0.8, rng);
    ProgramImage image = buildPdeProgram(a, 8);

    std::stringstream ss;
    saveProgramImage(ss, image);
    ProgramImage back = loadProgramImage(ss);

    Engine engine;
    engine.program(&back.matrix, &back.tables[0]);
    DenseVector b(72, 1.0), x(72, 0.0), xRef(72, 0.0);
    engine.runSymgsSweep(b, x);
    gaussSeidelSweep(a, b, xRef, GsSweep::Forward);
    for (Index i = 0; i < 72; ++i)
        EXPECT_NEAR(x[i], xRef[i], 1e-10);
}

TEST(ProgramImage, GraphProgramHoldsAllKernels)
{
    Rng rng(5);
    CsrMatrix g = gen::rmat(6, 4, rng);
    ProgramImage image = buildGraphProgram(g, 8);
    ASSERT_EQ(image.tables.size(), 4u);
    EXPECT_EQ(image.tables[0].kernel(), KernelType::BFS);
    // The image stores the transposed adjacency.
    EXPECT_EQ(image.matrix.decode(), g.transposed());
}

TEST(ProgramImage, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "garbage bytes here";
    EXPECT_THROW(loadProgramImage(ss), std::runtime_error);
}

TEST(ProgramImage, RejectsTruncatedStream)
{
    Rng rng(6);
    CsrMatrix a = gen::banded(32, 3, 0.8, rng);
    ProgramImage image = buildSpmvProgram(a, 8);
    std::stringstream ss;
    saveProgramImage(ss, image);
    std::string data = ss.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_THROW(loadProgramImage(cut), std::runtime_error);
}

TEST(ProgramImage, FileRoundTrip)
{
    Rng rng(7);
    CsrMatrix a = gen::banded(48, 4, 0.8, rng);
    ProgramImage image = buildSpmvProgram(a, 8);
    std::string path = ::testing::TempDir() + "/alr_prog_test.alr";
    saveProgramImageFile(path, image);
    ProgramImage back = loadProgramImageFile(path);
    EXPECT_EQ(back.matrix.decode(), a);
    std::remove(path.c_str());
}

} // namespace
} // namespace alr
