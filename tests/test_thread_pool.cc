/**
 * @file
 * Thread-pool unit tests: full range coverage, chunk contiguity,
 * serial fallback, nested-call inlining, exception propagation, and
 * the ALR_THREADS environment override.
 */

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace alr {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        constexpr size_t kN = 1000;
        std::vector<std::atomic<int>> hits(kN);
        pool.parallelFor(0, kN, [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                         << threads << " threads";
    }
}

TEST(ThreadPool, EmptyAndSingletonRanges)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(7, 8, [&](size_t i) {
        ++calls;
        EXPECT_EQ(i, 7u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ChunksAreContiguousAndOrdered)
{
    ThreadPool pool(3);
    std::vector<std::pair<size_t, size_t>> chunks(3,
                                                  {size_t(0), size_t(0)});
    std::atomic<size_t> next{0};
    pool.parallelForChunks(10, 110, [&](size_t lo, size_t hi) {
        ASSERT_LT(lo, hi);
        chunks[next.fetch_add(1)] = {lo, hi};
    });
    ASSERT_EQ(next.load(), 3u);
    std::sort(chunks.begin(), chunks.end());
    EXPECT_EQ(chunks.front().first, 10u);
    EXPECT_EQ(chunks.back().second, 110u);
    for (size_t c = 1; c < chunks.size(); ++c)
        EXPECT_EQ(chunks[c].first, chunks[c - 1].second);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    std::thread::id caller = std::this_thread::get_id();
    pool.parallelFor(0, 16, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> inner{0};
    pool.parallelFor(0, 8, [&](size_t) {
        // A nested call from a worker must not deadlock waiting for
        // the pool's own queue; it runs inline.
        pool.parallelFor(0, 4, [&](size_t) {
            inner.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner.load(), 8 * 4);
}

TEST(ThreadPool, PropagatesFirstException)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        std::atomic<int> ran{0};
        try {
            pool.parallelFor(0, 64, [&](size_t i) {
                ran.fetch_add(1, std::memory_order_relaxed);
                if (i == 13)
                    throw std::runtime_error("boom 13");
            });
            FAIL() << "expected exception with " << threads
                   << " threads";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("boom"),
                      std::string::npos);
        }
        EXPECT_GT(ran.load(), 0);
    }
}

TEST(ThreadPool, EnvOverridesDefaultThreadCount)
{
    ASSERT_EQ(setenv("ALR_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3);
    ASSERT_EQ(setenv("ALR_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1);
    ASSERT_EQ(unsetenv("ALR_THREADS"), 0);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1);
}

TEST(ThreadPool, GlobalPoolResizes)
{
    ThreadPool::setGlobalThreadCount(2);
    EXPECT_EQ(ThreadPool::global().threadCount(), 2);
    std::atomic<long> sum{0};
    parallelFor(1, 101, [&](size_t i) {
        sum.fetch_add(long(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 5050);
    ThreadPool::setGlobalThreadCount(0); // restore the env default
}

} // namespace
} // namespace alr
