/**
 * @file
 * Tests for the common substrate: logging capture, the stats package,
 * and the deterministic PRNG.
 */

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"

namespace alr {
namespace {

TEST(Logging, CaptureCollectsWarnAndInform)
{
    setLogCapture(true);
    warn("watch out %d", 7);
    inform("hello %s", "world");
    std::string captured = setLogCapture(false);
    EXPECT_NE(captured.find("warn: watch out 7"), std::string::npos);
    EXPECT_NE(captured.find("info: hello world"), std::string::npos);
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    ALR_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, AssertAbortsWithContext)
{
    EXPECT_DEATH(ALR_ASSERT(false, "value was %d", 3), "value was 3");
}

TEST(Stats, ScalarAccumulates)
{
    stats::Scalar s;
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DistributionTracksMoments)
{
    stats::Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.variance(), 1.25, 1e-12);
}

TEST(Stats, GroupLookupAndDump)
{
    stats::StatGroup g("unit");
    stats::Scalar a;
    a += 7.0;
    g.registerScalar("a", &a, "a counter");
    g.registerFormula("twice_a", [&a] { return 2.0 * a.value(); },
                      "derived");
    EXPECT_TRUE(g.has("a"));
    EXPECT_FALSE(g.has("b"));
    EXPECT_DOUBLE_EQ(g.lookup("a"), 7.0);
    EXPECT_DOUBLE_EQ(g.lookup("twice_a"), 14.0);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("unit.a"), std::string::npos);
    EXPECT_NE(os.str().find("# a counter"), std::string::npos);
}

TEST(Stats, GroupResetClearsScalars)
{
    stats::StatGroup g("unit");
    stats::Scalar a;
    a += 3.0;
    g.registerScalar("a", &a, "");
    g.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
}

TEST(StatsDeath, DuplicateRegistrationPanics)
{
    stats::StatGroup g("unit");
    stats::Scalar a;
    g.registerScalar("a", &a, "");
    EXPECT_DEATH(g.registerScalar("a", &a, ""), "duplicate");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextRange(13), 13u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, GaussianHasReasonableMoments)
{
    Rng rng(9);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng rng(10);
    auto perm = rng.permutation(50);
    std::vector<bool> seen(50, false);
    for (auto v : perm) {
        ASSERT_LT(v, 50u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Rng, BernoulliTracksProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Zipf, RankFrequencySlopeTracksTheExponent)
{
    // P(k) ~ 1/(k+1)^s, so log(freq) vs log(rank+1) is a line of
    // slope -s.  Fit it over the head ranks (plenty of mass there;
    // the tail is sampling noise) for two skews on either side of 1.
    for (double s : {0.8, 1.2}) {
        Rng rng(99);
        ZipfSampler zipf(64, s);
        std::vector<uint64_t> freq(zipf.n(), 0);
        constexpr int kDraws = 200000;
        for (int i = 0; i < kDraws; ++i)
            ++freq[zipf.sample(rng)];

        constexpr int kHead = 16;
        double sx = 0, sy = 0, sxx = 0, sxy = 0;
        for (int k = 0; k < kHead; ++k) {
            ASSERT_GT(freq[k], 0u) << "s=" << s << " rank " << k;
            double x = std::log(double(k + 1));
            double y = std::log(double(freq[k]));
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        double slope =
            (kHead * sxy - sx * sy) / (kHead * sxx - sx * sx);
        EXPECT_NEAR(slope, -s, 0.12) << "s=" << s;
    }
}

TEST(Zipf, ZeroExponentIsUniform)
{
    Rng rng(7);
    ZipfSampler zipf(16, 0.0);
    std::vector<uint64_t> freq(zipf.n(), 0);
    constexpr int kDraws = 160000;
    for (int i = 0; i < kDraws; ++i)
        ++freq[zipf.sample(rng)];
    for (uint32_t k = 0; k < zipf.n(); ++k)
        EXPECT_NEAR(double(freq[k]) / kDraws, 1.0 / zipf.n(), 0.01)
            << "rank " << k;
}

} // namespace
} // namespace alr
