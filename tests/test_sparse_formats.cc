/**
 * @file
 * Round-trip and invariant tests for every sparse storage format.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sparse/bcsr.hh"
#include "sparse/coo.hh"
#include "sparse/csc.hh"
#include "sparse/csr.hh"
#include "sparse/dense.hh"
#include "sparse/dia.hh"
#include "sparse/ell.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

CooMatrix
randomCoo(Index rows, Index cols, Index entries, uint64_t seed)
{
    Rng rng(seed);
    CooMatrix coo(rows, cols);
    for (Index i = 0; i < entries; ++i) {
        coo.add(Index(rng.nextRange(rows)), Index(rng.nextRange(cols)),
                rng.nextDouble(-5.0, 5.0));
    }
    coo.canonicalize();
    return coo;
}

TEST(Coo, CanonicalizeSortsAndMerges)
{
    CooMatrix coo(3, 3);
    coo.add(2, 1, 1.0);
    coo.add(0, 0, 2.0);
    coo.add(2, 1, 3.0);
    coo.add(1, 2, -1.0);
    coo.canonicalize();
    ASSERT_EQ(coo.nnz(), 3u);
    EXPECT_TRUE(coo.isCanonical());
    EXPECT_EQ(coo.triplets()[2].val, 4.0); // merged duplicate
}

TEST(Coo, CanonicalizeDropsExplicitZeros)
{
    CooMatrix coo(2, 2);
    coo.add(0, 0, 1.0);
    coo.add(0, 1, 2.0);
    coo.add(0, 1, -2.0); // cancels
    coo.canonicalize();
    EXPECT_EQ(coo.nnz(), 1u);
}

TEST(Coo, TransposeIsInvolution)
{
    CooMatrix coo = randomCoo(17, 23, 60, 1);
    EXPECT_EQ(coo.transposed().transposed(), coo);
}

TEST(Coo, MakeSpdYieldsSymmetricDominantMatrix)
{
    CooMatrix coo = randomCoo(20, 20, 80, 2);
    coo.makeSpd();
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EXPECT_TRUE(csr.isSymmetric(1e-12));
    for (Index r = 0; r < csr.rows(); ++r) {
        Value offsum = 0.0;
        for (Index k = csr.rowPtr()[r]; k < csr.rowPtr()[r + 1]; ++k) {
            if (csr.colIdx()[k] != r)
                offsum += std::abs(csr.vals()[k]);
        }
        EXPECT_GE(csr.at(r, r), offsum) << "row " << r;
    }
}

TEST(Dense, MultiplyMatchesManual)
{
    DenseMatrix a(2, 3);
    a(0, 0) = 1.0; a(0, 1) = 2.0; a(0, 2) = 3.0;
    a(1, 0) = -1.0; a(1, 2) = 4.0;
    DenseVector x = {1.0, 2.0, 3.0};
    DenseVector y = a.multiply(x);
    EXPECT_DOUBLE_EQ(y[0], 14.0);
    EXPECT_DOUBLE_EQ(y[1], 11.0);
}

TEST(Csr, RoundTripThroughCoo)
{
    CooMatrix coo = randomCoo(31, 19, 120, 3);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EXPECT_EQ(csr.toCoo(), coo);
}

TEST(Csr, AtFindsStoredAndMissingEntries)
{
    CooMatrix coo(4, 4);
    coo.add(1, 2, 5.5);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EXPECT_DOUBLE_EQ(csr.at(1, 2), 5.5);
    EXPECT_DOUBLE_EQ(csr.at(2, 1), 0.0);
}

TEST(Csr, TransposeMatchesDense)
{
    CooMatrix coo = randomCoo(12, 9, 40, 4);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    DenseMatrix d = csr.toDense();
    CsrMatrix t = csr.transposed();
    for (Index r = 0; r < csr.rows(); ++r) {
        for (Index c = 0; c < csr.cols(); ++c)
            EXPECT_DOUBLE_EQ(t.at(c, r), d(r, c));
    }
}

TEST(Csr, SymmetricPermutationPreservesSpectrumDiagonal)
{
    Rng rng(5);
    CsrMatrix csr = gen::randomSpd(24, 4, rng);
    std::vector<Index> perm;
    for (auto v : rng.permutation(24))
        perm.push_back(v);
    CsrMatrix p = csr.permuted(perm);
    ASSERT_EQ(p.nnz(), csr.nnz());
    // A'(i, j) == A(perm[i], perm[j]).
    for (Index i = 0; i < 24; ++i) {
        for (Index j = 0; j < 24; ++j)
            EXPECT_DOUBLE_EQ(p.at(i, j), csr.at(perm[i], perm[j]));
    }
}

TEST(Csr, MetadataBytesMatchesStructure)
{
    CooMatrix coo = randomCoo(10, 10, 30, 6);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EXPECT_EQ(csr.metadataBytes(),
              (csr.rows() + 1 + csr.nnz()) * sizeof(Index));
}

TEST(Csc, RoundTripAndColumnAccess)
{
    CooMatrix coo = randomCoo(15, 11, 50, 7);
    CscMatrix csc = CscMatrix::fromCoo(coo);
    EXPECT_EQ(csc.toCoo(), coo);
    Index total = 0;
    for (Index c = 0; c < csc.cols(); ++c)
        total += csc.colNnz(c);
    EXPECT_EQ(total, coo.nnz());
}

TEST(Csc, FromCsrMatchesFromCoo)
{
    CooMatrix coo = randomCoo(9, 14, 35, 8);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EXPECT_EQ(CscMatrix::fromCsr(csr), CscMatrix::fromCoo(coo));
}

class BcsrRoundTrip : public ::testing::TestWithParam<Index>
{
};

TEST_P(BcsrRoundTrip, PreservesMatrix)
{
    Index omega = GetParam();
    CooMatrix coo = randomCoo(37, 37, 200, 9);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    BcsrMatrix b = BcsrMatrix::fromCsr(csr, omega);
    EXPECT_EQ(b.toCsr(), csr);
    EXPECT_EQ(b.scalarNnz(), csr.nnz());
    EXPECT_GT(b.blockDensity(), 0.0);
    EXPECT_LE(b.blockDensity(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(BlockWidths, BcsrRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Bcsr, DenseBlocksAreFullyDense)
{
    // A fully dense small matrix blocks to density 1.
    DenseMatrix d(8, 8, 1.0);
    CsrMatrix csr = CsrMatrix::fromDense(d);
    BcsrMatrix b = BcsrMatrix::fromCsr(csr, 4);
    EXPECT_EQ(b.numBlocks(), 4u);
    EXPECT_DOUBLE_EQ(b.blockDensity(), 1.0);
}

TEST(Ell, RoundTripAndPadding)
{
    CooMatrix coo = randomCoo(21, 21, 70, 10);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EllMatrix e = EllMatrix::fromCsr(csr);
    EXPECT_EQ(e.toCsr(), csr);
    Index maxRow = 0;
    for (Index r = 0; r < csr.rows(); ++r)
        maxRow = std::max(maxRow, csr.rowNnz(r));
    EXPECT_EQ(e.rowWidth(), maxRow);
    EXPECT_GE(e.padOverhead(), 0.0);
    EXPECT_LT(e.padOverhead(), 1.0);
}

TEST(Ell, UniformRowsHaveNoPadding)
{
    CsrMatrix tri = gen::tridiagonal(16);
    EllMatrix e = EllMatrix::fromCsr(tri);
    // Interior rows have 3 entries, boundary rows 2: padding exists but
    // is tiny.
    EXPECT_EQ(e.rowWidth(), 3u);
    EXPECT_LT(e.padOverhead(), 0.1);
}

TEST(Dia, RoundTripBanded)
{
    CsrMatrix tri = gen::tridiagonal(25);
    DiaMatrix d = DiaMatrix::fromCsr(tri);
    EXPECT_EQ(d.numDiagonals(), 3u);
    EXPECT_EQ(d.toCsr(), tri);
    EXPECT_EQ(d.metadataBytes(), 3 * sizeof(int64_t));
}

TEST(Dia, RoundTripGeneral)
{
    CooMatrix coo = randomCoo(18, 18, 60, 11);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    DiaMatrix d = DiaMatrix::fromCsr(csr);
    EXPECT_EQ(d.toCsr(), csr);
}

/** Property sweep: all formats agree through CSR on random matrices. */
class FormatAgreement : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FormatAgreement, AllFormatsRoundTrip)
{
    CooMatrix coo = randomCoo(26, 26, 150, GetParam());
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EXPECT_EQ(CscMatrix::fromCsr(csr).toCsr(), csr);
    EXPECT_EQ(BcsrMatrix::fromCsr(csr, 8).toCsr(), csr);
    EXPECT_EQ(EllMatrix::fromCsr(csr).toCsr(), csr);
    EXPECT_EQ(DiaMatrix::fromCsr(csr).toCsr(), csr);
    EXPECT_EQ(CsrMatrix::fromDense(csr.toDense()), csr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatAgreement,
                         ::testing::Range<uint64_t>(100, 112));

} // namespace
} // namespace alr
