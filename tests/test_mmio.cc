/**
 * @file
 * Matrix Market reader/writer tests, including symmetric/pattern
 * variants and malformed-input rejection.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sparse/coo.hh"
#include "sparse/csr.hh"
#include "sparse/generators.hh"
#include "sparse/mmio.hh"

namespace alr {
namespace {

TEST(Mmio, WriteReadRoundTrip)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSparse(20, 14, 3, rng);
    CooMatrix coo = a.toCoo();

    std::stringstream ss;
    writeMatrixMarket(ss, coo);
    CooMatrix back = readMatrixMarket(ss);
    EXPECT_EQ(back, coo);
}

TEST(Mmio, ReadsGeneralRealFile)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "% a comment line\n"
       << "3 3 2\n"
       << "1 2 1.5\n"
       << "3 1 -2.0\n";
    CooMatrix coo = readMatrixMarket(ss);
    EXPECT_EQ(coo.rows(), 3u);
    EXPECT_EQ(coo.nnz(), 2u);
    EXPECT_DOUBLE_EQ(CsrMatrix::fromCoo(coo).at(0, 1), 1.5);
    EXPECT_DOUBLE_EQ(CsrMatrix::fromCoo(coo).at(2, 0), -2.0);
}

TEST(Mmio, ExpandsSymmetricFiles)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real symmetric\n"
       << "3 3 2\n"
       << "2 1 4.0\n"
       << "3 3 7.0\n";
    CooMatrix coo = readMatrixMarket(ss);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    EXPECT_DOUBLE_EQ(a.at(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(a.at(2, 2), 7.0);
    EXPECT_EQ(a.nnz(), 3u);
}

TEST(Mmio, ExpandsSkewSymmetric)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real skew-symmetric\n"
       << "2 2 1\n"
       << "2 1 3.0\n";
    CsrMatrix a = CsrMatrix::fromCoo(readMatrixMarket(ss));
    EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(a.at(0, 1), -3.0);
}

TEST(Mmio, PatternFilesGetUnitValues)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate pattern general\n"
       << "2 2 2\n"
       << "1 1\n"
       << "2 2\n";
    CsrMatrix a = CsrMatrix::fromCoo(readMatrixMarket(ss));
    EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(Mmio, RejectsMissingBanner)
{
    std::stringstream ss;
    ss << "not a matrix\n1 1 0\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, RejectsArrayFormat)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeIndices)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "2 2 1\n"
       << "3 1 1.0\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, RejectsTruncatedEntryList)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "2 2 2\n"
       << "1 1 1.0\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, SymmetricMatrixWritesSymmetricForm)
{
    Rng rng(3);
    CsrMatrix a = gen::randomSpd(24, 4, rng);
    ASSERT_TRUE(a.isSymmetric());

    std::stringstream ss;
    writeMatrixMarket(ss, a.toCoo());
    std::string text = ss.str();
    EXPECT_NE(text.find("coordinate real symmetric"), std::string::npos);

    // Stored entries are the lower triangle only: no doubling.
    CooMatrix acoo = a.toCoo();
    Index lower = 0;
    for (const Triplet &t : acoo.triplets())
        lower += t.row >= t.col;
    std::istringstream count(text);
    std::string line;
    std::getline(count, line); // banner
    std::getline(count, line); // size line
    long rows = 0, cols = 0, stored = 0;
    std::istringstream(line) >> rows >> cols >> stored;
    EXPECT_EQ(Index(stored), lower);

    // Round trip reproduces the matrix exactly (nnz preserved).
    std::istringstream back(text);
    CooMatrix coo = readMatrixMarket(back);
    EXPECT_EQ(CsrMatrix::fromCoo(coo), a);

    // A second write of the round-tripped matrix is byte-identical:
    // the write->read->write cycle is stable.
    std::stringstream again;
    writeMatrixMarket(again, coo);
    EXPECT_EQ(again.str(), text);
}

TEST(Mmio, NonSymmetricMatrixStaysGeneral)
{
    Rng rng(4);
    CsrMatrix a = gen::randomSparse(12, 12, 3, rng);
    ASSERT_FALSE(a.isSymmetric());
    std::stringstream ss;
    writeMatrixMarket(ss, a.toCoo());
    EXPECT_NE(ss.str().find("coordinate real general"),
              std::string::npos);
    std::istringstream back(ss.str());
    EXPECT_EQ(CsrMatrix::fromCoo(readMatrixMarket(back)), a);
}

TEST(Mmio, SkipsBlankLinesBeforeSizeLine)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "% comment\n"
       << "\n"
       << "2 2 1\n"
       << "1 2 5.0\n";
    CooMatrix coo = readMatrixMarket(ss);
    EXPECT_EQ(coo.nnz(), 1u);
    EXPECT_DOUBLE_EQ(CsrMatrix::fromCoo(coo).at(0, 1), 5.0);
}

TEST(Mmio, RejectsTrailingTokensOnEntryLines)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "2 2 1\n"
       << "1 2 3.0 junk\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, EntryErrorsReportLineNumber)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "% comment\n"
       << "2 2 2\n"
       << "1 1 1.0\n"
       << "9 9 2.0\n";
    try {
        readMatrixMarket(ss);
        FAIL() << "expected malformed-entry rejection";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 5"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Mmio, RejectsTrailingTokensOnSizeLine)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "2 2 1 extra\n"
       << "1 1 1.0\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, FileRoundTrip)
{
    Rng rng(2);
    CsrMatrix a = gen::randomSpd(25, 4, rng);
    std::string path = ::testing::TempDir() + "/alr_mmio_test.mtx";
    writeMatrixMarketFile(path, a.toCoo());
    CooMatrix back = readMatrixMarketFile(path);
    EXPECT_EQ(CsrMatrix::fromCoo(back), a);
    std::remove(path.c_str());
}

} // namespace
} // namespace alr
