/**
 * @file
 * Matrix Market reader/writer tests, including symmetric/pattern
 * variants and malformed-input rejection.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sparse/coo.hh"
#include "sparse/csr.hh"
#include "sparse/generators.hh"
#include "sparse/mmio.hh"

namespace alr {
namespace {

TEST(Mmio, WriteReadRoundTrip)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSparse(20, 14, 3, rng);
    CooMatrix coo = a.toCoo();

    std::stringstream ss;
    writeMatrixMarket(ss, coo);
    CooMatrix back = readMatrixMarket(ss);
    EXPECT_EQ(back, coo);
}

TEST(Mmio, ReadsGeneralRealFile)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "% a comment line\n"
       << "3 3 2\n"
       << "1 2 1.5\n"
       << "3 1 -2.0\n";
    CooMatrix coo = readMatrixMarket(ss);
    EXPECT_EQ(coo.rows(), 3u);
    EXPECT_EQ(coo.nnz(), 2u);
    EXPECT_DOUBLE_EQ(CsrMatrix::fromCoo(coo).at(0, 1), 1.5);
    EXPECT_DOUBLE_EQ(CsrMatrix::fromCoo(coo).at(2, 0), -2.0);
}

TEST(Mmio, ExpandsSymmetricFiles)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real symmetric\n"
       << "3 3 2\n"
       << "2 1 4.0\n"
       << "3 3 7.0\n";
    CooMatrix coo = readMatrixMarket(ss);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    EXPECT_DOUBLE_EQ(a.at(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(a.at(2, 2), 7.0);
    EXPECT_EQ(a.nnz(), 3u);
}

TEST(Mmio, ExpandsSkewSymmetric)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real skew-symmetric\n"
       << "2 2 1\n"
       << "2 1 3.0\n";
    CsrMatrix a = CsrMatrix::fromCoo(readMatrixMarket(ss));
    EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(a.at(0, 1), -3.0);
}

TEST(Mmio, PatternFilesGetUnitValues)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate pattern general\n"
       << "2 2 2\n"
       << "1 1\n"
       << "2 2\n";
    CsrMatrix a = CsrMatrix::fromCoo(readMatrixMarket(ss));
    EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(Mmio, RejectsMissingBanner)
{
    std::stringstream ss;
    ss << "not a matrix\n1 1 0\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, RejectsArrayFormat)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeIndices)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "2 2 1\n"
       << "3 1 1.0\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, RejectsTruncatedEntryList)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "2 2 2\n"
       << "1 1 1.0\n";
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Mmio, FileRoundTrip)
{
    Rng rng(2);
    CsrMatrix a = gen::randomSpd(25, 4, rng);
    std::string path = ::testing::TempDir() + "/alr_mmio_test.mtx";
    writeMatrixMarketFile(path, a.toCoo());
    CooMatrix back = readMatrixMarketFile(path);
    EXPECT_EQ(CsrMatrix::fromCoo(back), a);
    std::remove(path.c_str());
}

} // namespace
} // namespace alr
