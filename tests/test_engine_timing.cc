/**
 * @file
 * Timing-model invariants of the cycle-level engine: pipelined GEMV
 * throughput, D-SymGS serialization, reconfiguration hiding, bandwidth
 * utilization tracking block density, and cache accounting.
 */

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

DenseVector
ones(Index n)
{
    return DenseVector(n, 1.0);
}

TEST(Timing, SpmvCyclesScaleWithBlocks)
{
    Rng rng(1);
    CsrMatrix small = gen::blockStructured(128, 8, 3, 0.9, rng);
    CsrMatrix large = gen::blockStructured(512, 8, 3, 0.9, rng);

    Accelerator a1, a2;
    a1.loadSpmvOnly(small);
    a2.loadSpmvOnly(large);
    a1.spmv(ones(small.cols()));
    a2.spmv(ones(large.cols()));

    double c1 = double(a1.engine().totalCycles());
    double c2 = double(a2.engine().totalCycles());
    double b1 = double(a1.matrix().blocks().size());
    double b2 = double(a2.matrix().blocks().size());
    // Steady-state: roughly omega cycles per block.
    EXPECT_NEAR(c2 / c1, b2 / b1, 0.35 * b2 / b1);
}

TEST(Timing, GemvThroughputApproachesOneBlockPerOmegaCycles)
{
    Rng rng(2);
    CsrMatrix a = gen::blockStructured(1024, 8, 6, 1.0, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(ones(a.cols()));

    double cycles = double(acc.engine().totalCycles());
    double blocks = double(acc.matrix().blocks().size());
    double per_block = cycles / blocks;
    EXPECT_GE(per_block, 8.0);   // cannot beat the issue rate
    EXPECT_LE(per_block, 11.0);  // small overheads only
}

TEST(Timing, SymGsSerializesDiagonalBlocks)
{
    // A block-diagonal-only matrix is pure D-SymGS; the same nnz spread
    // off-diagonal is pure GEMV and must run much faster per sweep.
    Rng rng(3);
    CsrMatrix diagOnly = gen::blockStructured(512, 8, 1, 0.9, rng);
    CsrMatrix spread = gen::blockStructured(512, 8, 6, 0.9, rng);

    Accelerator a1, a2;
    a1.loadPde(diagOnly);
    a2.loadPde(spread);

    DenseVector b = ones(512), x1(512, 0.0), x2(512, 0.0);
    a1.symgsSweep(b, x1, GsSweep::Forward);
    a2.symgsSweep(b, x2, GsSweep::Forward);

    double seqFrac1 = a1.engine().sequentialOpFraction();
    double seqFrac2 = a2.engine().sequentialOpFraction();
    EXPECT_GT(seqFrac1, 0.9);
    EXPECT_LT(seqFrac2, 0.5);

    // Per-nonzero cost is far higher when everything is serialized.
    double perNnz1 = double(a1.engine().totalCycles()) / diagOnly.nnz();
    double perNnz2 = double(a2.engine().totalCycles()) / spread.nnz();
    EXPECT_GT(perNnz1, 2.0 * perNnz2);
}

TEST(Timing, DefaultReconfigurationIsHiddenByDrain)
{
    Rng rng(4);
    CsrMatrix a = gen::banded(256, 10, 0.8, rng);
    Accelerator acc;
    acc.loadPde(a);
    DenseVector b = ones(256), x(256, 0.0);
    acc.symgsSweep(b, x, GsSweep::Symmetric);
    EXPECT_GT(acc.engine().rcu().reconfigurations(), 0.0);
    // Default configCycles (8) < drain (12): no exposed stall.
    EXPECT_DOUBLE_EQ(acc.engine().rcu().reconfigStallCycles(), 0.0);
}

TEST(Timing, SlowReconfigurationExposesStalls)
{
    AccelParams p;
    p.configCycles = 100; // far beyond the drain time
    Rng rng(5);
    CsrMatrix a = gen::banded(256, 10, 0.8, rng);
    Accelerator acc(p);
    acc.loadPde(a);
    DenseVector b = ones(256), x(256, 0.0);
    acc.symgsSweep(b, x, GsSweep::Forward);
    EXPECT_GT(acc.engine().rcu().reconfigStallCycles(), 0.0);
}

TEST(Timing, SlowerReconfigMeansMoreCycles)
{
    Rng rng(6);
    CsrMatrix a = gen::banded(256, 10, 0.8, rng);
    uint64_t prev = 0;
    for (int cfg : {8, 50, 200}) {
        AccelParams p;
        p.configCycles = cfg;
        Accelerator acc(p);
        acc.loadPde(a);
        DenseVector b = ones(256), x(256, 0.0);
        acc.symgsSweep(b, x, GsSweep::Forward);
        EXPECT_GE(acc.engine().totalCycles(), prev);
        prev = acc.engine().totalCycles();
    }
}

TEST(Timing, BandwidthUtilizationTracksBlockDensity)
{
    Rng rng(7);
    CsrMatrix dense = gen::blockStructured(512, 8, 4, 1.0, rng);
    CsrMatrix sparse = gen::blockStructured(512, 8, 4, 0.2, rng);

    Accelerator a1, a2;
    a1.loadSpmvOnly(dense);
    a2.loadSpmvOnly(sparse);
    a1.spmv(ones(512));
    a2.spmv(ones(512));

    EXPECT_GT(a1.engine().bandwidthUtilization(),
              a2.engine().bandwidthUtilization());
}

TEST(Timing, CacheCountsChunkReads)
{
    Rng rng(8);
    CsrMatrix a = gen::blockStructured(256, 8, 4, 0.9, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(ones(256));
    // One x-chunk read per block.
    EXPECT_DOUBLE_EQ(acc.engine().rcu().cache().reads(),
                     double(acc.matrix().blocks().size()));
    EXPECT_GT(acc.engine().cacheTimeFraction(), 0.0);
    EXPECT_LT(acc.engine().cacheTimeFraction(), 1.0);
}

TEST(Timing, LinkStackBalancedAndBounded)
{
    Rng rng(9);
    CsrMatrix a = gen::banded(512, 20, 0.7, rng);
    Accelerator acc;
    acc.loadPde(a);
    DenseVector b = ones(512), x(512, 0.0);
    acc.symgsSweep(b, x, GsSweep::Symmetric);

    const LinkStack &ls = acc.engine().rcu().linkStack();
    EXPECT_GT(ls.pushes(), 0.0);
    EXPECT_TRUE(ls.empty()); // every push consumed
    // Depth bounded by the widest block row's off-diagonal count.
    EXPECT_LE(ls.maxDepth(), 20.0 / 8.0 * 2.0 + 2.0);
}

TEST(Timing, SecondsFollowClock)
{
    Rng rng(10);
    CsrMatrix a = gen::blockStructured(256, 8, 3, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(ones(256));
    double cycles = double(acc.engine().totalCycles());
    EXPECT_DOUBLE_EQ(acc.engine().seconds(), cycles * 1e-9 / 2.5);
}

TEST(Timing, ResetClearsAllCounters)
{
    Rng rng(11);
    CsrMatrix a = gen::blockStructured(128, 8, 3, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(ones(128));
    EXPECT_GT(acc.engine().totalCycles(), 0u);
    acc.resetStats();
    EXPECT_EQ(acc.engine().totalCycles(), 0u);
    EXPECT_DOUBLE_EQ(acc.engine().memory().bytesStreamed(), 0.0);
    EXPECT_DOUBLE_EQ(acc.engine().rcu().cache().reads(), 0.0);
}

TEST(Timing, MemoryBytesMatchStreamedPayload)
{
    Rng rng(12);
    CsrMatrix a = gen::blockStructured(128, 8, 3, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(ones(128));
    EXPECT_DOUBLE_EQ(acc.engine().memory().bytesStreamed(),
                     double(acc.matrix().streamBytes()));
}

TEST(Timing, WiderBlocksBecomeMemoryBound)
{
    // With omega=16 a block row is 128 B/cycle > the 115.2 B/cycle pipe:
    // the stream, not the issue rate, limits throughput.
    AccelParams p;
    p.omega = 16;
    Rng rng(13);
    CsrMatrix a = gen::blockStructured(512, 16, 4, 1.0, rng);
    Accelerator acc(p);
    acc.loadSpmvOnly(a);
    acc.spmv(ones(512));
    double cycles = double(acc.engine().totalCycles());
    double blocks = double(acc.matrix().blocks().size());
    double per_block = cycles / blocks;
    double mem_bound = 16.0 * 16.0 * 8.0 / p.bytesPerCycle();
    EXPECT_GE(per_block, mem_bound * 0.95);
}

} // namespace
} // namespace alr
