/**
 * @file
 * Functional-equivalence tests: the cycle-level engine must produce the
 * same numbers as the golden reference kernels for every kernel, matrix
 * family, and block width (the core verification contract of DESIGN.md).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "kernels/blas1.hh"
#include "kernels/graph.hh"
#include "kernels/spmv.hh"
#include "kernels/symgs.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

DenseVector
randomVector(Index n, uint64_t seed)
{
    Rng rng(seed);
    DenseVector v(n);
    for (auto &e : v)
        e = rng.nextDouble(-1.0, 1.0);
    return v;
}

void
expectNear(const DenseVector &got, const DenseVector &want, Value tol)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        if (std::isinf(want[i])) {
            EXPECT_TRUE(std::isinf(got[i])) << "index " << i;
        } else {
            EXPECT_NEAR(got[i], want[i], tol) << "index " << i;
        }
    }
}

AccelParams
paramsWithOmega(Index omega)
{
    AccelParams p;
    p.omega = omega;
    return p;
}

TEST(EngineSpmv, MatchesReferenceOnStencil)
{
    CsrMatrix a = gen::stencil2d(9, 9, 5);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    DenseVector x = randomVector(a.cols(), 1);
    expectNear(acc.spmv(x), spmv(a, x), 1e-10);
}

TEST(EngineSpmv, MatchesReferenceOnRectangular)
{
    Rng rng(2);
    CsrMatrix a = gen::randomSparse(37, 23, 5, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    DenseVector x = randomVector(23, 3);
    expectNear(acc.spmv(x), spmv(a, x), 1e-10);
}

TEST(EngineSpmv, WorksThroughPdeLayoutToo)
{
    // loadPde builds an SpMV table over the SymGs layout; the separated
    // diagonal must still participate in the product.
    Rng rng(4);
    CsrMatrix a = gen::randomSpd(45, 5, rng);
    Accelerator acc;
    acc.loadPde(a);
    DenseVector x = randomVector(45, 5);
    expectNear(acc.spmv(x), spmv(a, x), 1e-10);
}

TEST(EngineSymGs, ForwardSweepMatchesReference)
{
    Rng rng(6);
    CsrMatrix a = gen::banded(50, 4, 0.6, rng);
    Accelerator acc;
    acc.loadPde(a);

    DenseVector b = randomVector(50, 7);
    DenseVector xAcc = randomVector(50, 8);
    DenseVector xRef = xAcc;

    acc.symgsSweep(b, xAcc, GsSweep::Forward);
    gaussSeidelSweep(a, b, xRef, GsSweep::Forward);
    expectNear(xAcc, xRef, 1e-10);
}

TEST(EngineSymGs, BackwardSweepMatchesReference)
{
    Rng rng(9);
    CsrMatrix a = gen::banded(41, 3, 0.7, rng);
    Accelerator acc;
    acc.loadPde(a);

    DenseVector b = randomVector(41, 10);
    DenseVector xAcc = randomVector(41, 11);
    DenseVector xRef = xAcc;

    acc.symgsSweep(b, xAcc, GsSweep::Backward);
    gaussSeidelSweep(a, b, xRef, GsSweep::Backward);
    expectNear(xAcc, xRef, 1e-10);
}

TEST(EngineSymGs, SymmetricSweepMatchesReference)
{
    CsrMatrix a = gen::stencil2d(7, 7, 9);
    Accelerator acc;
    acc.loadPde(a);

    DenseVector b = randomVector(49, 12);
    DenseVector xAcc(49, 0.0), xRef(49, 0.0);
    acc.symgsSweep(b, xAcc, GsSweep::Symmetric);
    gaussSeidelSweep(a, b, xRef, GsSweep::Symmetric);
    expectNear(xAcc, xRef, 1e-10);
}

TEST(EnginePcg, ConvergesLikeHostSolver)
{
    CsrMatrix a = gen::stencil3d(4, 4, 4, 27);
    DenseVector xTrue = randomVector(64, 13);
    DenseVector b = spmv(a, xTrue);

    Accelerator acc;
    acc.loadPde(a);
    PcgResult ra = acc.pcg(b);
    PcgResult rh = pcgSolve(a, b);

    EXPECT_TRUE(ra.converged);
    EXPECT_LT(maxAbsDiff(ra.x, xTrue), 1e-6);
    // Same algorithm, same preconditioner: iteration counts match to
    // within floating-point reassociation slack.
    EXPECT_NEAR(double(ra.iterations), double(rh.iterations), 2.0);
}

TEST(EngineGraph, BfsMatchesReference)
{
    Rng rng(14);
    CsrMatrix g = gen::rmat(7, 6, rng);
    Accelerator acc;
    acc.loadGraph(g);
    GraphResult res = acc.bfs(0);
    expectNear(res.values, bfsReference(g, 0), 0.0);
    EXPECT_GE(res.rounds, 1);
}

TEST(EngineGraph, BfsOnGridMatchesReference)
{
    Rng rng(15);
    CsrMatrix g = gen::roadGrid(9, 7, 0.05, rng);
    Accelerator acc;
    acc.loadGraph(g);
    expectNear(acc.bfs(5).values, bfsReference(g, 5), 0.0);
}

TEST(EngineGraph, SsspMatchesDijkstra)
{
    Rng rng(16);
    CsrMatrix g = gen::rmat(7, 5, rng);
    Accelerator acc;
    acc.loadGraph(g);
    expectNear(acc.sssp(1).values, ssspReference(g, 1), 1e-9);
}

TEST(EngineGraph, SsspOnRoadGridMatchesDijkstra)
{
    Rng rng(17);
    CsrMatrix g = gen::roadGrid(8, 8, 0.1, rng);
    Accelerator acc;
    acc.loadGraph(g);
    expectNear(acc.sssp(0).values, ssspReference(g, 0), 1e-9);
}

TEST(EngineGraph, PagerankMatchesPowerIteration)
{
    Rng rng(18);
    CsrMatrix g = gen::powerLawGraph(120, 6, 0.8, rng);
    Accelerator acc;
    acc.loadGraph(g);
    PageRankOptions opts;
    GraphResult res = acc.pagerank(opts);
    DenseVector ref = pagerank(g, opts);
    expectNear(res.values, ref, 1e-6);

    Value total = 0.0;
    for (Value v : res.values)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-6);
}

/**
 * Property sweep: every kernel agrees with its reference across block
 * widths and random seeds.
 */
class EngineSweep
    : public ::testing::TestWithParam<std::tuple<Index, uint64_t>>
{
};

TEST_P(EngineSweep, SymGsForwardAgrees)
{
    auto [omega, seed] = GetParam();
    Rng rng(seed);
    CsrMatrix a = gen::randomSpd(53, 5, rng);
    Accelerator acc(paramsWithOmega(omega));
    acc.loadPde(a);
    DenseVector b = randomVector(53, seed + 1);
    DenseVector xAcc = randomVector(53, seed + 2);
    DenseVector xRef = xAcc;
    acc.symgsSweep(b, xAcc, GsSweep::Forward);
    gaussSeidelSweep(a, b, xRef, GsSweep::Forward);
    expectNear(xAcc, xRef, 1e-9);
}

TEST_P(EngineSweep, SpmvAgrees)
{
    auto [omega, seed] = GetParam();
    Rng rng(seed + 50);
    CsrMatrix a = gen::randomSparse(47, 31, 6, rng);
    Accelerator acc(paramsWithOmega(omega));
    acc.loadSpmvOnly(a);
    DenseVector x = randomVector(31, seed + 3);
    expectNear(acc.spmv(x), spmv(a, x), 1e-9);
}

TEST_P(EngineSweep, GraphKernelsAgree)
{
    auto [omega, seed] = GetParam();
    Rng rng(seed + 99);
    CsrMatrix g = gen::rmat(6, 5, rng);
    Accelerator acc(paramsWithOmega(omega));
    acc.loadGraph(g);
    expectNear(acc.bfs(0).values, bfsReference(g, 0), 0.0);
    expectNear(acc.sssp(0).values, ssspReference(g, 0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    OmegaSeeds, EngineSweep,
    ::testing::Combine(::testing::Values<Index>(2, 3, 4, 5, 8, 16),
                       ::testing::Values<uint64_t>(21, 22, 23)));

} // namespace
} // namespace alr
