/**
 * @file
 * Direct unit tests of the simulator components: memory pipe, local
 * cache, link stack, FCU, and RCU -- the pieces the engine composes.
 */

#include <gtest/gtest.h>

#include "alrescha/sim/cache.hh"
#include "alrescha/sim/fcu.hh"
#include "alrescha/sim/link_stack.hh"
#include "alrescha/sim/memory.hh"
#include "alrescha/sim/rcu.hh"

namespace alr {
namespace {

AccelParams
defaults()
{
    return AccelParams{};
}

TEST(MemoryUnit, StreamCyclesCeilAgainstBandwidth)
{
    MemoryModel mem(defaults());
    // 288 GB/s at 2.5 GHz = 115.2 B/cycle.
    EXPECT_EQ(mem.streamCycles(0), 0u);
    EXPECT_EQ(mem.streamCycles(1), 1u);
    EXPECT_EQ(mem.streamCycles(115), 1u);
    EXPECT_EQ(mem.streamCycles(116), 2u);
    EXPECT_EQ(mem.streamCycles(1152), 10u);
}

TEST(MemoryUnit, StreamCyclesExactForIntegralBytesPerCycle)
{
    // 2 GB/s at 1 GHz = exactly 2 B/cycle: the cycle count must use
    // exact integer ceil-division.  The old double-based rounding loses
    // the low bits of byte counts above 2^53 -- (2^54 + 2) / 2 computed
    // through doubles rounds the numerator to 2^54 and returns 2^53
    // instead of 2^53 + 1.
    AccelParams p;
    p.clockGhz = 1.0;
    p.memBandwidthGBs = 2.0;
    MemoryModel mem(p);
    EXPECT_EQ(mem.streamCycles(0), 0u);
    EXPECT_EQ(mem.streamCycles(1), 1u);
    EXPECT_EQ(mem.streamCycles(2), 1u);
    EXPECT_EQ(mem.streamCycles(3), 2u);
    EXPECT_EQ(mem.streamCycles((uint64_t(1) << 54) + 2),
              (uint64_t(1) << 53) + 1);
}

TEST(MemoryUnit, TrafficAccounting)
{
    MemoryModel mem(defaults());
    mem.recordStream(1000);
    mem.recordStream(24);
    EXPECT_DOUBLE_EQ(mem.bytesStreamed(), 1024.0);
    uint64_t penalty = mem.recordRandomAccess();
    EXPECT_GT(penalty, uint64_t(defaults().dramLatency));
    EXPECT_DOUBLE_EQ(mem.totalBytes(),
                     1024.0 + defaults().cacheLineBytes);
    mem.reset();
    EXPECT_DOUBLE_EQ(mem.totalBytes(), 0.0);
}

TEST(CacheUnit, HitAfterMissSameChunk)
{
    AccelParams p = defaults();
    MemoryModel mem(p);
    CacheModel cache(p, &mem);

    // First dependent read misses: latency + fill.
    uint64_t first = cache.read(CacheVec::Diag, 3, true);
    EXPECT_GT(first, uint64_t(p.cacheLatency));
    // Second dependent read hits: just the access latency.
    uint64_t second = cache.read(CacheVec::Diag, 3, true);
    EXPECT_EQ(second, uint64_t(p.cacheLatency));
    EXPECT_DOUBLE_EQ(cache.hits(), 1.0);
    EXPECT_DOUBLE_EQ(cache.misses(), 1.0);
}

TEST(CacheUnit, StreamingReadsNeverStallOnLatency)
{
    AccelParams p = defaults();
    MemoryModel mem(p);
    CacheModel cache(p, &mem);
    // Prefetched miss costs only the line's bandwidth share.
    uint64_t miss = cache.read(CacheVec::Xt, 7, false);
    EXPECT_LE(miss, mem.streamCycles(p.cacheLineBytes));
    // Prefetched hit costs nothing.
    EXPECT_EQ(cache.read(CacheVec::Xt, 7, false), 0u);
}

TEST(CacheUnit, DistinctVectorsDoNotAlias)
{
    AccelParams p = defaults();
    MemoryModel mem(p);
    CacheModel cache(p, &mem);
    cache.read(CacheVec::Xt, 0, false);
    cache.read(CacheVec::Xprev, 0, false);
    // Same chunk index, different vector: both are misses.
    EXPECT_DOUBLE_EQ(cache.misses(), 2.0);
}

TEST(CacheUnit, CapacityEviction)
{
    AccelParams p = defaults();
    p.cacheBytes = 128; // 2 lines only
    MemoryModel mem(p);
    CacheModel cache(p, &mem);
    for (Index c = 0; c < 8; ++c)
        cache.read(CacheVec::Xt, c, false);
    // Re-reading the first chunk must miss again.
    double missesBefore = cache.misses();
    cache.read(CacheVec::Xt, 0, false);
    EXPECT_GT(cache.misses(), missesBefore);
}

TEST(LinkStackUnit, LifoAccumulation)
{
    LinkStack stack;
    stack.push({1.0, 2.0});
    stack.push({10.0, 20.0});
    EXPECT_EQ(stack.depth(), 2u);
    DenseVector acc = stack.popAccumulate(2);
    EXPECT_DOUBLE_EQ(acc[0], 11.0);
    EXPECT_DOUBLE_EQ(acc[1], 22.0);
    EXPECT_TRUE(stack.empty());
    EXPECT_DOUBLE_EQ(stack.maxDepth(), 2.0);
}

TEST(LinkStackUnit, EmptyPopIsZero)
{
    LinkStack stack;
    DenseVector acc = stack.popAccumulate(4);
    for (Value v : acc)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FcuUnit, MulSumReduce)
{
    Fcu fcu(defaults());
    std::vector<Value> a = {1.0, 2.0, 3.0};
    std::vector<Value> b = {4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(fcu.vectorReduce(a, b, VecOp::Mul, ReduceOp::Sum),
                     32.0);
    EXPECT_DOUBLE_EQ(fcu.mulOps(), 3.0);
}

TEST(FcuUnit, AddMinReduceWithLaneMask)
{
    Fcu fcu(defaults());
    std::vector<Value> a = {5.0, 1.0, 9.0};
    std::vector<Value> b = {1.0, 1.0, 1.0};
    std::vector<uint8_t> valid = {1, 0, 1};
    // Lane 1 (the minimum) is masked out.
    EXPECT_DOUBLE_EQ(
        fcu.vectorReduce(a, b, VecOp::Add, ReduceOp::Min, valid), 6.0);
    EXPECT_DOUBLE_EQ(fcu.addOps(), 2.0); // masked lane does no work
}

TEST(FcuUnit, FillLatencyFollowsTreeDepth)
{
    AccelParams p = defaults(); // omega 8: depth 3
    Fcu fcu(p);
    EXPECT_EQ(fcu.fillLatency(ReduceOp::Sum),
              p.aluLatency + 3 * p.reSumLatency);
    EXPECT_EQ(fcu.fillLatency(ReduceOp::Min),
              p.aluLatency + 3 * p.reMinLatency);
}

TEST(RcuUnit, FirstConfigurationChargesProgramTime)
{
    AccelParams p = defaults();
    MemoryModel mem(p);
    Rcu rcu(p, &mem);
    EXPECT_FALSE(rcu.configured().has_value());
    uint64_t c = rcu.reconfigure(DataPathType::Gemv);
    EXPECT_EQ(c, uint64_t(p.configCycles));
    EXPECT_EQ(*rcu.configured(), DataPathType::Gemv);
}

TEST(RcuUnit, RepeatedSamePathIsFree)
{
    AccelParams p = defaults();
    MemoryModel mem(p);
    Rcu rcu(p, &mem);
    rcu.reconfigure(DataPathType::Gemv);
    EXPECT_EQ(rcu.reconfigure(DataPathType::Gemv), 0u);
    EXPECT_DOUBLE_EQ(rcu.reconfigurations(), 1.0);
}

TEST(RcuUnit, SwitchHiddenUnderDrainByDefault)
{
    AccelParams p = defaults(); // configCycles 8 < drain 12
    MemoryModel mem(p);
    Rcu rcu(p, &mem);
    rcu.reconfigure(DataPathType::Gemv);
    uint64_t c = rcu.reconfigure(DataPathType::DSymgs);
    EXPECT_EQ(c, uint64_t(p.drainCycles()));
    EXPECT_DOUBLE_EQ(rcu.reconfigStallCycles(), 0.0);
}

TEST(RcuUnit, SlowSwitchExposesStall)
{
    AccelParams p = defaults();
    p.configCycles = 50;
    MemoryModel mem(p);
    Rcu rcu(p, &mem);
    rcu.reconfigure(DataPathType::Gemv);
    uint64_t c = rcu.reconfigure(DataPathType::DSymgs);
    EXPECT_EQ(c, uint64_t(p.drainCycles() + (50 - p.drainCycles())));
    EXPECT_DOUBLE_EQ(rcu.reconfigStallCycles(),
                     double(50 - p.drainCycles()));
}

TEST(RcuUnit, PeOpsCountAndLatency)
{
    AccelParams p = defaults();
    MemoryModel mem(p);
    Rcu rcu(p, &mem);
    EXPECT_EQ(rcu.peOp(), uint64_t(p.peLatency));
    rcu.peOp();
    EXPECT_DOUBLE_EQ(rcu.peOps(), 2.0);
    rcu.reset();
    EXPECT_DOUBLE_EQ(rcu.peOps(), 0.0);
    EXPECT_FALSE(rcu.configured().has_value());
}

TEST(ParamsUnit, DerivedQuantities)
{
    AccelParams p;
    EXPECT_DOUBLE_EQ(p.bytesPerCycle(), 115.2);
    EXPECT_DOUBLE_EQ(p.secondsPerCycle(), 1e-9 / 2.5);
    EXPECT_EQ(p.treeDepth(), 3);
    p.omega = 16;
    EXPECT_EQ(p.treeDepth(), 4);
    p.omega = 5; // non-power-of-two rounds up
    EXPECT_EQ(p.treeDepth(), 3);
}

} // namespace
} // namespace alr
