/**
 * @file
 * Pattern-analytics tests: the structural quantities driving the
 * paper's discussion (bandwidth, diagonal fraction, block density).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"
#include "sparse/pattern_stats.hh"

namespace alr {
namespace {

TEST(PatternStats, TridiagonalBasics)
{
    CsrMatrix a = gen::tridiagonal(16);
    PatternStats s = analyzePattern(a, 4);
    EXPECT_EQ(s.rows, 16u);
    EXPECT_EQ(s.nnz, 46u);
    EXPECT_EQ(s.bandwidth, 1u);
    EXPECT_EQ(s.maxRowNnz, 3u);
    EXPECT_DOUBLE_EQ(s.diagFraction, 1.0); // everything within the band
}

TEST(PatternStats, DiagBlockFractionOnPureDiagonal)
{
    CooMatrix coo(16, 16);
    for (Index i = 0; i < 16; ++i)
        coo.add(i, i, 1.0);
    PatternStats s = analyzePattern(CsrMatrix::fromCoo(coo), 4);
    EXPECT_DOUBLE_EQ(s.diagBlockFraction, 1.0);
    EXPECT_EQ(s.nonEmptyBlocks, 4u);
    EXPECT_DOUBLE_EQ(s.blockDensity, 16.0 / (4.0 * 16.0));
}

TEST(PatternStats, OffDiagonalEntryDetected)
{
    CooMatrix coo(16, 16);
    for (Index i = 0; i < 16; ++i)
        coo.add(i, i, 1.0);
    coo.add(0, 15, 1.0);
    PatternStats s = analyzePattern(CsrMatrix::fromCoo(coo), 4);
    EXPECT_EQ(s.bandwidth, 15u);
    EXPECT_LT(s.diagBlockFraction, 1.0);
}

TEST(PatternStats, DensityIsExact)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSparse(20, 30, 4, rng);
    PatternStats s = analyzePattern(a, 8);
    EXPECT_DOUBLE_EQ(s.density, double(a.nnz()) / (20.0 * 30.0));
    EXPECT_DOUBLE_EQ(s.meanRowNnz, double(a.nnz()) / 20.0);
}

TEST(PatternStats, BlockDensityDropsWithLargerBlocks)
{
    Rng rng(2);
    CsrMatrix a = gen::banded(256, 4, 0.8, rng);
    PatternStats s8 = analyzePattern(a, 8);
    PatternStats s32 = analyzePattern(a, 32);
    // The §5.2 rationale for omega = 8: bigger blocks dilute fill.
    EXPECT_GT(s8.blockDensity, s32.blockDensity);
}

TEST(PatternStats, EmptyMatrix)
{
    CsrMatrix a = CsrMatrix::fromCoo(CooMatrix(4, 4));
    PatternStats s = analyzePattern(a, 2);
    EXPECT_EQ(s.nnz, 0u);
    EXPECT_DOUBLE_EQ(s.blockDensity, 0.0);
    EXPECT_EQ(s.nonEmptyBlocks, 0u);
}

} // namespace
} // namespace alr
