/**
 * @file
 * Cycle-accounting profiler tests: the conservation invariant
 * (attributed cycles sum exactly to the engine's modeled cycles,
 * attributed bytes to the memory model's total traffic), bucket
 * agreement across the interpreter / scheduled scalar / SIMD replay
 * engines, a hand-computed attribution on a two-block-row matrix, the
 * D-SymGS critical-path extractor, the export formats, and the
 * zero-perturbation contract (recorder off => results, cycles, and
 * stat dumps bit-identical).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "alrescha/accelerator.hh"
#include "alrescha/sim/profile.hh"
#include "common/random.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

struct ProfileGuard
{
    ProfileGuard()
    {
        profile::reset();
        profile::setEnabled(true);
    }
    ~ProfileGuard()
    {
        profile::setEnabled(false);
        profile::reset();
    }
};

AccelParams
makeParams(Index omega, bool use_schedule, bool simd)
{
    AccelParams p;
    p.omega = omega;
    p.useSchedule = use_schedule;
    p.simdMode = simd ? SimdMode::Auto : SimdMode::Scalar;
    return p;
}

/** Run one kernel under the recorder and return (snapshot, cycles,
 *  memory bytes).  The recorder is reset before the run. */
profile::Snapshot
runProfiled(const CsrMatrix &a, const std::string &kernel,
            const AccelParams &params, uint64_t *cycles_out = nullptr,
            double *bytes_out = nullptr)
{
    profile::reset();
    Accelerator acc(params);
    if (kernel == "spmv") {
        acc.loadSpmvOnly(a);
        acc.spmv(DenseVector(a.cols(), 1.0));
    } else {
        acc.loadPde(a);
        DenseVector b(a.rows(), 1.0), x(a.rows(), 0.0);
        acc.symgsSweep(b, x, GsSweep::Symmetric);
    }
    if (cycles_out)
        *cycles_out = acc.engine().totalCycles();
    if (bytes_out)
        *bytes_out = acc.engine().memory().totalBytes();
    return profile::snapshot();
}

void
expectSameBuckets(const profile::Snapshot &a, const profile::Snapshot &b,
                  const std::string &what)
{
    ASSERT_EQ(a.buckets.size(), b.buckets.size()) << what;
    for (size_t i = 0; i < a.buckets.size(); ++i) {
        const profile::BucketRow &ra = a.buckets[i];
        const profile::BucketRow &rb = b.buckets[i];
        EXPECT_EQ(ra.dp, rb.dp) << what << " bucket " << i;
        EXPECT_EQ(ra.blockRow, rb.blockRow) << what << " bucket " << i;
        EXPECT_EQ(ra.cause, rb.cause) << what << " bucket " << i;
        EXPECT_EQ(ra.cycles, rb.cycles)
            << what << " bucket " << i << " ("
            << toString(ra.dp) << ", row " << ra.blockRow << ", "
            << profile::toString(ra.cause) << ")";
        EXPECT_EQ(ra.bytes, rb.bytes)
            << what << " bucket " << i << " ("
            << toString(ra.dp) << ", row " << ra.blockRow << ", "
            << profile::toString(ra.cause) << ")";
    }
}

} // namespace

// ---------------------------------------------------------------------
// Conservation: buckets sum exactly to the engine's cycles and the
// memory model's bytes, for every kernel / engine / omega combination.

TEST(ProfileConservation, ExactAcrossKernelsEnginesAndOmegas)
{
    ProfileGuard guard;
    Rng rng(7);
    CsrMatrix a = gen::blockStructured(96, 8, 4, 0.7, rng);

    for (const char *kernel : {"spmv", "symgs"}) {
        for (Index omega : {Index(4), Index(8)}) {
            for (bool sched : {false, true}) {
                for (bool simd : {false, true}) {
                    if (!sched && simd)
                        continue; // simd only applies when scheduled
                    uint64_t cycles = 0;
                    double bytes = 0.0;
                    profile::Snapshot snap =
                        runProfiled(a, kernel,
                                    makeParams(omega, sched, simd),
                                    &cycles, &bytes);
                    std::string what =
                        std::string(kernel) + " omega " +
                        std::to_string(omega) +
                        (sched ? (simd ? " simd" : " scheduled")
                               : " interpreter");
                    EXPECT_EQ(snap.attributedCycles, cycles) << what;
                    EXPECT_EQ(double(snap.attributedBytes), bytes)
                        << what;
                    EXPECT_GT(snap.buckets.size(), 0u) << what;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine agreement: the interpreter, the scheduled scalar walk, and the
// SIMD replay attribute every bucket identically.

TEST(ProfileAgreement, InterpreterScheduledSimdIdentical)
{
    ProfileGuard guard;
    Rng rng(11);
    CsrMatrix a = gen::blockStructured(128, 8, 5, 0.6, rng);

    for (const char *kernel : {"spmv", "symgs"}) {
        for (Index omega : {Index(4), Index(8)}) {
            AccelParams interp = makeParams(omega, false, false);
            AccelParams sched = makeParams(omega, true, false);
            AccelParams simd = makeParams(omega, true, true);
            profile::Snapshot si = runProfiled(a, kernel, interp);
            profile::Snapshot ss = runProfiled(a, kernel, sched);
            profile::Snapshot sv = runProfiled(a, kernel, simd);
            std::string what = std::string(kernel) + " omega " +
                               std::to_string(omega);
            expectSameBuckets(si, ss, what + " interp-vs-scheduled");
            expectSameBuckets(ss, sv, what + " scalar-vs-simd");
        }
    }
}

// ---------------------------------------------------------------------
// Hand-computed attribution: dense 4x4 at omega 2 (two block rows, four
// full blocks).  Every charge is derivable from AccelParams by hand:
//   reconfigure (first ever, fully exposed)     8 cycles  @ row 0
//   pipeline fill = alu 3 + 1 tree level * 3    6 cycles  @ row 0
//   x^t chunk reads: cols 0,1 miss then hit     1+1 cycle @ row 0
//   per-block stream: 2 occupied rows * 16 B -> 1 memory cycle but a
//     2-cycle issue floor: Stream 1 + FcuCompute 1, four blocks
//   out-row writebacks: rows 0, 1 allocate      0 cycles, 64 B each
//   end-of-run drain                            6 cycles  @ run level
// Total 8 + 6 + 2 + 4*2 + 6 = 30 cycles; bytes 4*32 streamed plus
// 4 line fills (2 x^t reads + 2 out writes) * 64 = 384.

TEST(ProfileHandComputed, DenseTwoBlockRowSpmvAtOmega2)
{
    ProfileGuard guard;
    CooMatrix coo(4, 4);
    for (Index r = 0; r < 4; ++r)
        for (Index c = 0; c < 4; ++c)
            coo.add(r, c, 1.0 + double(r) * 4.0 + double(c));
    CsrMatrix a = CsrMatrix::fromCoo(coo);

    for (bool sched : {false, true}) {
        uint64_t cycles = 0;
        double bytes = 0.0;
        profile::Snapshot snap = runProfiled(
            a, "spmv", makeParams(2, sched, false), &cycles, &bytes);
        const char *what = sched ? "scheduled" : "interpreter";

        EXPECT_EQ(cycles, 30u) << what;
        EXPECT_EQ(snap.attributedCycles, 30u) << what;
        EXPECT_EQ(bytes, 384.0) << what;
        EXPECT_EQ(snap.attributedBytes, 384u) << what;

        struct Expect
        {
            int64_t row;
            profile::Cause cause;
            uint64_t cycles;
            uint64_t bytes;
        };
        const Expect expected[] = {
            {-1, profile::Cause::TreeDrain, 6, 0},
            {0, profile::Cause::Stream, 2, 64},
            {0, profile::Cause::FcuCompute, 8, 0},
            {0, profile::Cause::ReconfigExposed, 8, 0},
            {0, profile::Cause::CacheMiss, 2, 192},
            {1, profile::Cause::Stream, 2, 64},
            {1, profile::Cause::FcuCompute, 2, 0},
            {1, profile::Cause::CacheMiss, 0, 64},
        };
        ASSERT_EQ(snap.buckets.size(), std::size(expected)) << what;
        for (size_t i = 0; i < std::size(expected); ++i) {
            const profile::BucketRow &r = snap.buckets[i];
            EXPECT_EQ(r.dp, DataPathType::Gemv) << what << " " << i;
            EXPECT_EQ(r.blockRow, expected[i].row) << what << " " << i;
            EXPECT_EQ(r.cause, expected[i].cause) << what << " " << i;
            EXPECT_EQ(r.cycles, expected[i].cycles)
                << what << " bucket " << i << " ("
                << profile::toString(r.cause) << ")";
            EXPECT_EQ(r.bytes, expected[i].bytes)
                << what << " bucket " << i << " ("
                << profile::toString(r.cause) << ")";
        }
    }
}

// ---------------------------------------------------------------------
// D-SymGS critical path: a sweep records one chain record per diagonal
// block, per-row aggregates conserve the dsymgs_wait buckets, and a
// serialized (block-diagonal-only) matrix reports a dependence-bound
// longest chain.

TEST(ProfileCriticalPath, BlockDiagonalSweepIsDependenceBound)
{
    ProfileGuard guard;
    Rng rng(13);
    CsrMatrix a = gen::blockStructured(128, 8, 1, 0.9, rng);

    uint64_t cycles = 0;
    profile::Snapshot snap =
        runProfiled(a, "symgs", makeParams(8, true, true), &cycles);

    ASSERT_FALSE(snap.critical.empty());
    uint64_t chains = 0, wait_rows = 0;
    for (const profile::CriticalRow &r : snap.critical) {
        chains += r.chains;
        wait_rows += r.waitCycles;
        EXPECT_LE(r.depBoundChains, r.chains);
    }
    // Symmetric sweep: forward + backward each execute every diagonal
    // block once.
    EXPECT_EQ(chains, 2u * uint64_t(a.rows()) / 8u);

    uint64_t wait_buckets = 0;
    for (const profile::BucketRow &r : snap.buckets) {
        if (r.cause == profile::Cause::DSymgsWait) {
            EXPECT_EQ(r.dp, DataPathType::DSymgs);
            wait_buckets += r.cycles;
        }
    }
    EXPECT_EQ(wait_rows, wait_buckets);
    // Pure diagonal work: the recurrence dominates the stream, so most
    // of the run is wait, and the longest chain spans multiple rows.
    EXPECT_GT(wait_buckets, cycles / 2);
    EXPECT_GT(snap.longestChainCycles, 0u);
    EXPECT_GE(snap.longestChainLastRow, snap.longestChainFirstRow);
}

// ---------------------------------------------------------------------
// Zero perturbation: with the recorder off, results, cycle counts, and
// the full stat dump are bit-identical to a recorded run.

TEST(ProfileZeroPerturbation, RecorderOffIsBitIdentical)
{
    Rng rng(17);
    CsrMatrix a = gen::blockStructured(96, 8, 4, 0.7, rng);

    for (bool sched : {false, true}) {
        AccelParams params = makeParams(8, sched, true);

        profile::setEnabled(false);
        profile::reset();
        Accelerator off(params);
        off.loadPde(a);
        DenseVector b(a.rows(), 1.0), x_off(a.rows(), 0.0);
        off.symgsSweep(b, x_off, GsSweep::Symmetric);
        DenseVector y_off = off.spmv(DenseVector(a.cols(), 1.0));
        std::ostringstream dump_off;
        off.engine().statGroup().dump(dump_off);
        EXPECT_EQ(profile::snapshot().buckets.size(), 0u);

        ProfileGuard guard;
        Accelerator on(params);
        on.loadPde(a);
        DenseVector x_on(a.rows(), 0.0);
        on.symgsSweep(b, x_on, GsSweep::Symmetric);
        DenseVector y_on = on.spmv(DenseVector(a.cols(), 1.0));
        std::ostringstream dump_on;
        on.engine().statGroup().dump(dump_on);
        EXPECT_GT(profile::snapshot().buckets.size(), 0u);

        EXPECT_EQ(off.engine().totalCycles(), on.engine().totalCycles());
        ASSERT_EQ(x_off.size(), x_on.size());
        for (size_t i = 0; i < x_off.size(); ++i)
            EXPECT_EQ(x_off[i], x_on[i]) << "x[" << i << "]";
        for (size_t i = 0; i < y_off.size(); ++i)
            EXPECT_EQ(y_off[i], y_on[i]) << "y[" << i << "]";
        EXPECT_EQ(dump_off.str(), dump_on.str());
    }
}

// ---------------------------------------------------------------------
// Exports: the JSON document carries the meta block and conserves in
// its own fields; the CSV heatmap and folded stacks cover every bucket.

TEST(ProfileExport, JsonCsvAndFoldedAreConsistent)
{
    ProfileGuard guard;
    Rng rng(19);
    CsrMatrix a = gen::blockStructured(64, 8, 3, 0.8, rng);
    uint64_t cycles = 0;
    profile::Snapshot snap =
        runProfiled(a, "symgs", makeParams(8, true, true), &cycles);

    std::ostringstream js;
    profile::exportJson(js, {"symgs", 8, cycles, ""});
    const std::string doc = js.str();
    EXPECT_NE(doc.find("\"kernel\": \"symgs\""), std::string::npos);
    EXPECT_NE(doc.find("\"total_cycles\": " + std::to_string(cycles)),
              std::string::npos);
    EXPECT_NE(doc.find("\"attributed_cycles\": " +
                       std::to_string(cycles)),
              std::string::npos);
    EXPECT_NE(doc.find("\"critical_path\""), std::string::npos);
    EXPECT_NE(doc.find("\"version\""), std::string::npos);

    std::ostringstream csv;
    profile::exportCsv(csv);
    // Header + one line per distinct block row (incl. -1).
    size_t lines = 0;
    for (char c : csv.str())
        lines += c == '\n';
    std::set<int64_t> rows;
    for (const profile::BucketRow &r : snap.buckets)
        rows.insert(r.blockRow);
    EXPECT_EQ(lines, rows.size() + 1);

    std::ostringstream folded;
    profile::exportFolded(folded);
    size_t folded_lines = 0;
    for (char c : folded.str())
        folded_lines += c == '\n';
    size_t nonzero = 0;
    for (const profile::BucketRow &r : snap.buckets)
        nonzero += r.cycles > 0;
    EXPECT_EQ(folded_lines, nonzero);

    std::vector<profile::BucketRow> hot = profile::hotspots(5);
    ASSERT_LE(hot.size(), 5u);
    ASSERT_FALSE(hot.empty());
    for (size_t i = 1; i < hot.size(); ++i)
        EXPECT_GE(hot[i - 1].cycles, hot[i].cycles);
    EXPECT_EQ(hot[0].cycles, snap.buckets.empty()
                                 ? 0u
                                 : [&] {
                                       uint64_t m = 0;
                                       for (const auto &r : snap.buckets)
                                           m = std::max(m, r.cycles);
                                       return m;
                                   }());
}
