/**
 * @file
 * Algorithm 1 conversion tests, including the paper's Fig 8 example
 * (n = 9, omega = 3) and the reordering / direction variants.
 */

#include <gtest/gtest.h>

#include "alrescha/config_table.hh"
#include "common/random.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

/**
 * The Fig 8 matrix: a 9x9 SymGS example with block width 3 whose block
 * pattern has off-diagonal blocks around a full block diagonal.  We use
 * block rows {0: blocks (0,0),(0,1); 1: (1,0),(1,1),(1,2); 2: (2,1),(2,2)}.
 */
CsrMatrix
fig8Matrix()
{
    CooMatrix coo(9, 9);
    auto fillBlock = [&](Index br, Index bc) {
        for (Index lr = 0; lr < 3; ++lr) {
            for (Index lc = 0; lc < 3; ++lc) {
                Index r = br * 3 + lr;
                Index c = bc * 3 + lc;
                coo.add(r, c, r == c ? 10.0 : 1.0);
            }
        }
    };
    fillBlock(0, 0);
    fillBlock(0, 1);
    fillBlock(1, 0);
    fillBlock(1, 1);
    fillBlock(1, 2);
    fillBlock(2, 1);
    fillBlock(2, 2);
    return CsrMatrix::fromCoo(coo);
}

TEST(ConfigTable, Fig8SymGsSequence)
{
    CsrMatrix a = fig8Matrix();
    auto ld = LocallyDenseMatrix::encode(a, 3, LdLayout::SymGs);
    ConfigTable t = ConfigTable::convert(KernelType::SymGS, ld);

    // Expected data-path sequence (reordered): per block row all GEMVs
    // then one D-SymGS.
    ASSERT_EQ(t.entries().size(), 7u);
    auto dp = [&](size_t i) { return t.entries()[i].dp; };
    EXPECT_EQ(dp(0), DataPathType::Gemv);   // (0,1)
    EXPECT_EQ(dp(1), DataPathType::DSymgs); // (0,0)
    EXPECT_EQ(dp(2), DataPathType::Gemv);   // (1,0)
    EXPECT_EQ(dp(3), DataPathType::Gemv);   // (1,2)
    EXPECT_EQ(dp(4), DataPathType::DSymgs); // (1,1)
    EXPECT_EQ(dp(5), DataPathType::Gemv);   // (2,1)
    EXPECT_EQ(dp(6), DataPathType::DSymgs); // (2,2)
}

TEST(ConfigTable, Fig8PortsAndOrders)
{
    CsrMatrix a = fig8Matrix();
    auto ld = LocallyDenseMatrix::encode(a, 3, LdLayout::SymGs);
    ConfigTable t = ConfigTable::convert(KernelType::SymGS, ld);

    const auto &e = t.entries();
    // Block (0,1): above the diagonal -> x^{t-1} (port2), l2r.
    EXPECT_EQ(e[0].op, OperandPort::Port2);
    EXPECT_EQ(e[0].order, AccessOrder::L2R);
    EXPECT_EQ(e[0].inxIn, 3u);
    EXPECT_EQ(e[0].inxOut, -1); // link stack, no cache write
    // D-SymGS for block row 0: r2l, writes chunk 0.
    EXPECT_EQ(e[1].order, AccessOrder::R2L);
    EXPECT_EQ(e[1].inxOut, 0);
    // Block (1,0): below the diagonal -> x^t (port1).
    EXPECT_EQ(e[2].op, OperandPort::Port1);
    // Block (1,2): above -> port2.
    EXPECT_EQ(e[3].op, OperandPort::Port2);
}

TEST(ConfigTable, Fig8MetadataBits)
{
    CsrMatrix a = fig8Matrix();
    auto ld = LocallyDenseMatrix::encode(a, 3, LdLayout::SymGs);
    ConfigTable t = ConfigTable::convert(KernelType::SymGS, ld);
    // n/omega = 3 block rows -> ceil(log2 3) = 2 address bits, twice,
    // plus 3 control bits.
    EXPECT_EQ(t.bitsPerEntry(), 2u * 2u + 3u);
}

TEST(ConfigTable, SpmvUsesSingleDataPath)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSpd(32, 4, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    ConfigTable t = ConfigTable::convert(KernelType::SpMV, ld);
    ASSERT_EQ(t.entries().size(), ld.blocks().size());
    for (const auto &e : t.entries()) {
        EXPECT_EQ(e.dp, DataPathType::Gemv);
        EXPECT_EQ(e.op, OperandPort::Port1);
        EXPECT_GE(e.inxOut, 0);
    }
    EXPECT_EQ(t.switchCount(), 0u);
}

TEST(ConfigTable, GraphKernelsMapToTheirPaths)
{
    Rng rng(2);
    CsrMatrix g = gen::rmat(6, 4, rng);
    auto ld = LocallyDenseMatrix::encode(g.transposed(), 8,
                                         LdLayout::Plain);
    EXPECT_EQ(ConfigTable::convert(KernelType::BFS, ld)
                  .entries()
                  .front()
                  .dp,
              DataPathType::DBfs);
    EXPECT_EQ(ConfigTable::convert(KernelType::SSSP, ld)
                  .entries()
                  .front()
                  .dp,
              DataPathType::DSssp);
    EXPECT_EQ(ConfigTable::convert(KernelType::PageRank, ld)
                  .entries()
                  .front()
                  .dp,
              DataPathType::DPr);
}

TEST(ConfigTable, NaturalOrderViolatesLinkStackDependence)
{
    // Without the reordering, the D-SymGS of every two-sided block row
    // appears before the GEMVs of its upper-triangle blocks -- whose
    // partial sums it needs.  That is exactly why only reordered tables
    // are executable; the natural order exists for the ablation counts.
    Rng rng(3);
    CsrMatrix a = gen::banded(64, 10, 0.8, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    ConfigTable ordered =
        ConfigTable::convert(KernelType::SymGS, ld, true);
    ConfigTable natural =
        ConfigTable::convert(KernelType::SymGS, ld, false);
    EXPECT_EQ(ordered.entries().size(), natural.entries().size());
    EXPECT_TRUE(ordered.reordered());
    EXPECT_FALSE(natural.reordered());

    bool violation = false;
    Index curRow = 0;
    bool diagSeen = false;
    for (const auto &e : natural.entries()) {
        const auto &blk = ld.blocks()[e.blockId];
        if (blk.blockRow != curRow) {
            curRow = blk.blockRow;
            diagSeen = false;
        }
        if (e.dp == DataPathType::DSymgs)
            diagSeen = true;
        else if (diagSeen)
            violation = true;
    }
    EXPECT_TRUE(violation);
}

TEST(ConfigTable, ReorderedGemvsPrecedeTheirDSymgs)
{
    // The executability invariant behind the link stack: within every
    // block row, all GEMVs come before the D-SymGS.
    Rng rng(30);
    CsrMatrix a = gen::blockStructured(64, 8, 4, 0.6, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    ConfigTable t = ConfigTable::convert(KernelType::SymGS, ld, true);
    bool diagSeen = false;
    Index curRow = 0;
    for (const auto &e : t.entries()) {
        const auto &blk = ld.blocks()[e.blockId];
        if (blk.blockRow != curRow) {
            EXPECT_TRUE(diagSeen);
            curRow = blk.blockRow;
            diagSeen = false;
        }
        if (e.dp == DataPathType::DSymgs)
            diagSeen = true;
        else
            EXPECT_FALSE(diagSeen) << "GEMV after D-SymGS in block row "
                                   << blk.blockRow;
    }
    EXPECT_TRUE(diagSeen);
}

TEST(ConfigTable, ReorderedHasAtMostTwoSwitchesPerBlockRow)
{
    Rng rng(4);
    CsrMatrix a = gen::blockStructured(96, 8, 5, 0.5, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    ConfigTable t = ConfigTable::convert(KernelType::SymGS, ld, true);
    EXPECT_LE(t.switchCount(), 2u * ld.blockRows());
}

TEST(ConfigTable, BackwardSweepVisitsRowsDescendingWithSwappedPorts)
{
    CsrMatrix a = fig8Matrix();
    auto ld = LocallyDenseMatrix::encode(a, 3, LdLayout::SymGs);
    ConfigTable t = ConfigTable::convert(KernelType::SymGS, ld, true,
                                         GsSweep::Backward);
    ASSERT_EQ(t.entries().size(), 7u);
    // First block row visited is the last one.
    Index firstRow =
        ld.blocks()[t.entries().front().blockId].blockRow;
    EXPECT_EQ(firstRow, 2u);
    // Block (2,1): below the diagonal; in a backward sweep chunk 1 is
    // not yet updated -> port2.
    const auto &e0 = t.entries()[0];
    EXPECT_EQ(ld.blocks()[e0.blockId].blockCol, 1u);
    EXPECT_EQ(e0.op, OperandPort::Port2);
}

TEST(ConfigTable, CountsByType)
{
    CsrMatrix a = fig8Matrix();
    auto ld = LocallyDenseMatrix::encode(a, 3, LdLayout::SymGs);
    ConfigTable t = ConfigTable::convert(KernelType::SymGS, ld);
    EXPECT_EQ(t.countOf(DataPathType::Gemv), 4u);
    EXPECT_EQ(t.countOf(DataPathType::DSymgs), 3u);
}

TEST(ConfigTable, TableBytesGrowWithEntries)
{
    Rng rng(5);
    CsrMatrix small = gen::randomSpd(24, 3, rng);
    CsrMatrix large = gen::randomSpd(96, 6, rng);
    auto lds = LocallyDenseMatrix::encode(small, 8, LdLayout::SymGs);
    auto ldl = LocallyDenseMatrix::encode(large, 8, LdLayout::SymGs);
    auto ts = ConfigTable::convert(KernelType::SymGS, lds);
    auto tl = ConfigTable::convert(KernelType::SymGS, ldl);
    EXPECT_LT(ts.tableBytes(), tl.tableBytes());
}

} // namespace
} // namespace alr
