/**
 * @file
 * Energy-model tests: component accounting, monotonicity in work, and
 * the qualitative ordering against the CPU/GPU baselines (Fig 19).
 */

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "baselines/cpu_model.hh"
#include "baselines/gpu_model.hh"
#include "common/random.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

TEST(Energy, ZeroWorkZeroDynamicEnergy)
{
    Engine engine;
    EnergyModel model;
    EnergyBreakdown e = model.evaluate(engine);
    EXPECT_DOUBLE_EQ(e.dram, 0.0);
    EXPECT_DOUBLE_EQ(e.sram, 0.0);
    EXPECT_DOUBLE_EQ(e.compute, 0.0);
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(Energy, MonotonicInWork)
{
    Rng rng(1);
    CsrMatrix small = gen::blockStructured(128, 8, 3, 0.8, rng);
    CsrMatrix large = gen::blockStructured(512, 8, 3, 0.8, rng);

    Accelerator a1, a2;
    a1.loadSpmvOnly(small);
    a2.loadSpmvOnly(large);
    a1.spmv(DenseVector(128, 1.0));
    a2.spmv(DenseVector(512, 1.0));

    EXPECT_LT(a1.report().energyJoules, a2.report().energyJoules);
}

TEST(Energy, DramDominatesForStreamingKernels)
{
    Rng rng(2);
    CsrMatrix a = gen::blockStructured(1024, 8, 4, 0.9, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(DenseVector(1024, 1.0));

    EnergyBreakdown e = acc.report().energy;
    // Off-chip traffic costs far more per byte than on-chip compute.
    EXPECT_GT(e.dram, e.compute);
    EXPECT_GT(e.dram, e.sram);
}

TEST(Energy, CustomParamsScaleComponents)
{
    Rng rng(3);
    CsrMatrix a = gen::blockStructured(256, 8, 3, 0.8, rng);

    EnergyParams cheap;
    EnergyParams costly = cheap;
    costly.dramPjPerByte *= 10.0;

    Accelerator a1({}, cheap), a2({}, costly);
    a1.loadSpmvOnly(a);
    a2.loadSpmvOnly(a);
    a1.spmv(DenseVector(256, 1.0));
    a2.spmv(DenseVector(256, 1.0));

    EXPECT_NEAR(a2.report().energy.dram,
                10.0 * a1.report().energy.dram, 1e-12);
    EXPECT_NEAR(a2.report().energy.compute, a1.report().energy.compute,
                1e-15);
}

TEST(Energy, AlreschaBeatsGpuAndCpuOnSpmv)
{
    // The Fig 19 ordering: CPU >> GPU >> Alrescha.  Absolute ratios are
    // bench territory; this test pins the ordering itself.
    Rng rng(4);
    CsrMatrix a = gen::blockStructured(4096, 8, 4, 0.8, rng);

    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(DenseVector(a.cols(), 1.0));
    double accEnergy = acc.report().energyJoules;

    GpuModel gpu;
    CpuModel cpu;
    double gpuEnergy = gpu.energyJoules(gpu.spmvSeconds(a));
    double cpuEnergy = cpu.energyJoules(cpu.spmvSeconds(a));

    EXPECT_LT(accEnergy, gpuEnergy);
    EXPECT_LT(gpuEnergy, cpuEnergy);
}

TEST(Energy, ReconfigurationEnergyCountsSwitches)
{
    Rng rng(5);
    CsrMatrix a = gen::banded(256, 10, 0.8, rng);
    Accelerator acc;
    acc.loadPde(a);
    DenseVector b(256, 1.0), x(256, 0.0);
    acc.symgsSweep(b, x, GsSweep::Symmetric);

    EnergyBreakdown e = acc.report().energy;
    EXPECT_GT(e.reconfig, 0.0);
    double expected = acc.engine().rcu().reconfigurations() * 100.0e-12;
    EXPECT_NEAR(e.reconfig, expected, 1e-15);
}

} // namespace
} // namespace alr
