/**
 * @file
 * Determinism property tests for the parallel host-preprocessing
 * pipeline: encoding, Algorithm 1 conversion, and multi-engine
 * execution must be bit-for-bit identical across thread counts.
 * Serialized byte streams are compared so every field (block
 * descriptors, block-row pointers, payload stream, diagonal, table
 * entries) is covered.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "alrescha/config_table.hh"
#include "alrescha/format.hh"
#include "alrescha/multi.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

std::string
serializeLd(const LocallyDenseMatrix &ld)
{
    std::ostringstream out;
    ld.serialize(out);
    return out.str();
}

std::string
serializeTable(const ConfigTable &t)
{
    std::ostringstream out;
    t.serialize(out);
    return out.str();
}

TEST(ParallelPipeline, EncodeIsThreadCountInvariant)
{
    Rng rng(11);
    CsrMatrix spd = gen::randomSpd(193, 5, rng);
    CsrMatrix rect = gen::randomSparse(170, 121, 7, rng);

    ThreadPool one(1);
    for (Index omega : {4u, 8u}) {
        std::string goldSym =
            serializeLd(LocallyDenseMatrix::encode(spd, omega,
                                                   LdLayout::SymGs, &one));
        std::string goldPlain =
            serializeLd(LocallyDenseMatrix::encode(rect, omega,
                                                   LdLayout::Plain, &one));
        for (int threads : {2, 8}) {
            ThreadPool pool(threads);
            EXPECT_EQ(serializeLd(LocallyDenseMatrix::encode(
                          spd, omega, LdLayout::SymGs, &pool)),
                      goldSym)
                << "omega " << omega << ", " << threads << " threads";
            EXPECT_EQ(serializeLd(LocallyDenseMatrix::encode(
                          rect, omega, LdLayout::Plain, &pool)),
                      goldPlain)
                << "omega " << omega << ", " << threads << " threads";
        }
    }
}

TEST(ParallelPipeline, ConvertIsThreadCountInvariant)
{
    Rng rng(12);
    CsrMatrix spd = gen::randomSpd(201, 6, rng);
    ThreadPool one(1);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(spd, 8, LdLayout::SymGs, &one);

    struct Case
    {
        KernelType kernel;
        bool reorder;
        GsSweep dir;
    };
    const Case cases[] = {
        {KernelType::SymGS, true, GsSweep::Forward},
        {KernelType::SymGS, true, GsSweep::Backward},
        {KernelType::SymGS, false, GsSweep::Forward},
        {KernelType::SpMV, true, GsSweep::Forward},
    };
    for (const Case &c : cases) {
        std::string gold = serializeTable(
            ConfigTable::convert(c.kernel, ld, c.reorder, c.dir, &one));
        for (int threads : {2, 8}) {
            ThreadPool pool(threads);
            EXPECT_EQ(serializeTable(ConfigTable::convert(
                          c.kernel, ld, c.reorder, c.dir, &pool)),
                      gold)
                << toString(c.kernel) << " with " << threads
                << " threads";
        }
    }
}

TEST(ParallelPipeline, AcceleratorLoadMatchesAcrossHostThreads)
{
    Rng rng(13);
    CsrMatrix spd = gen::randomSpd(160, 5, rng);

    AccelParams p1;
    p1.hostThreads = 1;
    Accelerator serial(p1);
    serial.loadPde(spd);

    AccelParams p8;
    p8.hostThreads = 8;
    Accelerator parallel(p8);
    parallel.loadPde(spd);

    EXPECT_EQ(serializeLd(serial.matrix()),
              serializeLd(parallel.matrix()));
    EXPECT_EQ(serializeTable(serial.table(KernelType::SymGS)),
              serializeTable(parallel.table(KernelType::SymGS)));
    EXPECT_EQ(
        serializeTable(serial.table(KernelType::SymGS, GsSweep::Backward)),
        serializeTable(parallel.table(KernelType::SymGS,
                                      GsSweep::Backward)));
    EXPECT_EQ(serializeTable(serial.table(KernelType::SpMV)),
              serializeTable(parallel.table(KernelType::SpMV)));

    // Kernel results on the parallel-encoded program match exactly.
    DenseVector x(spd.cols(), 0.5);
    EXPECT_EQ(serial.spmv(x), parallel.spmv(x));
    DenseVector b(spd.rows(), 1.0);
    DenseVector xs(spd.rows(), 0.0), xp(spd.rows(), 0.0);
    serial.symgsSweep(b, xs, GsSweep::Symmetric);
    parallel.symgsSweep(b, xp, GsSweep::Symmetric);
    EXPECT_EQ(xs, xp);
}

TEST(ParallelPipeline, MultiAcceleratorResultsMatchAcrossThreadCounts)
{
    Rng rng(14);
    CsrMatrix a = gen::randomSpd(128, 4, rng);
    CsrMatrix adj = gen::rmat(7, 6, rng);
    DenseVector x(a.cols());
    for (Index i = 0; i < a.cols(); ++i)
        x[i] = Value(i % 7) * 0.25 - 0.5;

    DenseVector goldSpmv, goldBfs;
    uint64_t goldCycles = 0;
    for (int threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreadCount(threads);
        MultiParams mp;
        mp.numEngines = 4;
        MultiAccelerator multi(mp);
        multi.loadSpmv(a);
        DenseVector y = multi.spmv(x);
        multi.loadGraph(adj);
        GraphResult bfs = multi.bfs(0);
        uint64_t cycles = multi.report().cycles;
        if (threads == 1) {
            goldSpmv = y;
            goldBfs = bfs.values;
            goldCycles = cycles;
        } else {
            EXPECT_EQ(y, goldSpmv) << threads << " threads";
            EXPECT_EQ(bfs.values, goldBfs) << threads << " threads";
            EXPECT_EQ(cycles, goldCycles) << threads << " threads";
        }
    }
    ThreadPool::setGlobalThreadCount(0); // restore the env default
}

} // namespace
} // namespace alr
