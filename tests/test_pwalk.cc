/**
 * @file
 * Partitioned parallel timing walk tests (ISSUE 6): the parallel walk
 * must be bit-identical to the serial scheduled walk -- results, cycle
 * counts, full stat dumps, profile buckets, and modeled timeline
 * events -- at every pool size, because partition boundaries are
 * schedule constants and the combine is an ordered reduction.  Plus
 * the profiler conservation invariant under partitioning, D-SymGS
 * level-schedule equivalence on a matrix with real multi-chain
 * parallelism, partition-boundary determinism, and the
 * ALR_PARALLEL_TIMING environment override.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "alrescha/accelerator.hh"
#include "alrescha/sim/profile.hh"
#include "alrescha/sim/schedule.hh"
#include "common/random.hh"
#include "common/timeline.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

/** The full serialized stat listing of an engine. */
std::string
statDump(Engine &e)
{
    std::ostringstream os;
    e.statGroup().dump(os);
    return os.str();
}

AccelParams
makeParams(Index omega, int threads, bool parallel, bool simd = true)
{
    AccelParams p;
    p.omega = omega;
    p.useSchedule = true;
    p.engineThreads = threads;
    p.simdMode = simd ? SimdMode::Auto : SimdMode::Scalar;
    p.parallelTiming = parallel;
    return p;
}

void
expectTimingEq(const RunTiming &a, const RunTiming &b, const char *what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.seqCycles, b.seqCycles) << what;
    EXPECT_EQ(a.parCycles, b.parCycles) << what;
}

/** The env override forces the parallel walk on for every engine; the
 *  equivalence tests need their reference engines genuinely serial. */
struct ScopedUnsetParallelEnv
{
    ScopedUnsetParallelEnv()
    {
        if (const char *env = std::getenv("ALR_PARALLEL_TIMING")) {
            saved = env;
            had = true;
            unsetenv("ALR_PARALLEL_TIMING");
        }
    }
    ~ScopedUnsetParallelEnv()
    {
        if (had)
            setenv("ALR_PARALLEL_TIMING", saved.c_str(), 1);
    }
    std::string saved;
    bool had = false;
};

struct ProfileGuard
{
    ProfileGuard()
    {
        profile::reset();
        profile::setEnabled(true);
    }
    ~ProfileGuard()
    {
        profile::setEnabled(false);
        profile::reset();
    }
};

struct TimelineGuard
{
    TimelineGuard()
    {
        timeline::reset();
        timeline::setEnabled(true);
    }
    ~TimelineGuard()
    {
        timeline::setEnabled(false);
        timeline::reset();
    }
};

void
expectSameBuckets(const profile::Snapshot &a, const profile::Snapshot &b,
                  const std::string &what)
{
    ASSERT_EQ(a.buckets.size(), b.buckets.size()) << what;
    for (size_t i = 0; i < a.buckets.size(); ++i) {
        const profile::BucketRow &ra = a.buckets[i];
        const profile::BucketRow &rb = b.buckets[i];
        EXPECT_EQ(ra.dp, rb.dp) << what << " bucket " << i;
        EXPECT_EQ(ra.blockRow, rb.blockRow) << what << " bucket " << i;
        EXPECT_EQ(ra.cause, rb.cause) << what << " bucket " << i;
        EXPECT_EQ(ra.cycles, rb.cycles)
            << what << " bucket " << i << " (" << toString(ra.dp)
            << ", row " << ra.blockRow << ", "
            << profile::toString(ra.cause) << ")";
        EXPECT_EQ(ra.bytes, rb.bytes)
            << what << " bucket " << i << " (" << toString(ra.dp)
            << ", row " << ra.blockRow << ", "
            << profile::toString(ra.cause) << ")";
    }
}

/** Modeled-pid events only: host spans (worker wall clocks) legitimately
 *  differ between serial and pooled execution. */
std::vector<timeline::Event>
modeledEvents()
{
    std::vector<timeline::Event> out;
    for (const timeline::Event &e : timeline::events())
        if (e.pid == timeline::kPidModeled)
            out.push_back(e);
    return out;
}

void
expectSameModeledEvents(const std::vector<timeline::Event> &a,
                        const std::vector<timeline::Event> &b,
                        const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_STREQ(a[i].name, b[i].name) << what << " event " << i;
        EXPECT_STREQ(a[i].cat, b[i].cat) << what << " event " << i;
        EXPECT_EQ(a[i].ts, b[i].ts)
            << what << " event " << i << " (" << a[i].name << ")";
        EXPECT_EQ(a[i].dur, b[i].dur)
            << what << " event " << i << " (" << a[i].name << ")";
        EXPECT_EQ(a[i].value, b[i].value) << what << " event " << i;
        EXPECT_EQ(a[i].tid, b[i].tid) << what << " event " << i;
        EXPECT_EQ(a[i].kind, b[i].kind) << what << " event " << i;
    }
}

struct Case
{
    Index omega;
    int threads;
    uint64_t seed;
};

class PwalkEquivalence : public ::testing::TestWithParam<Case>
{
  protected:
    ScopedUnsetParallelEnv envGuard;
};

} // namespace

// ---------------------------------------------------------------------
// Bit-identity thread sweep: the parallel walk at pool sizes 1/2/4/8
// must reproduce the serial scheduled walk exactly -- results, all
// three cycle counters, and the entire serialized stat dump -- with
// cache and switch state carried across repeated runs.

TEST_P(PwalkEquivalence, SpmvBitIdentical)
{
    const Case c = GetParam();
    Rng rng(c.seed);
    CsrMatrix a = gen::randomSpd(97, 6, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    Engine ser(makeParams(c.omega, 1, false));
    Engine par(makeParams(c.omega, c.threads, true));
    ser.program(&ld, &table);
    par.program(&ld, &table);

    DenseVector x(a.cols());
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = Value(i % 13) - 6.0;

    for (int run = 0; run < 3; ++run) {
        RunTiming ts, tp;
        DenseVector ys = ser.runSpmv(x, &ts);
        DenseVector yp = par.runSpmv(x, &tp);
        ASSERT_EQ(ys, yp) << "run " << run;
        expectTimingEq(ts, tp, "spmv timing");
    }
    EXPECT_EQ(statDump(ser), statDump(par));
}

TEST_P(PwalkEquivalence, SpmmBitIdentical)
{
    const Case c = GetParam();
    Rng rng(c.seed + 100);
    CsrMatrix a = gen::blockStructured(96, c.omega, 3, 0.5, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    Engine ser(makeParams(c.omega, 1, false));
    Engine par(makeParams(c.omega, c.threads, true));
    ser.program(&ld, &table);
    par.program(&ld, &table);

    std::vector<DenseVector> xs(3, DenseVector(a.cols()));
    for (size_t j = 0; j < xs.size(); ++j)
        for (size_t i = 0; i < xs[j].size(); ++i)
            xs[j][i] = Value((i * (j + 1)) % 17) - 8.0;

    for (int run = 0; run < 3; ++run) {
        RunTiming ts, tp;
        auto ys = ser.runSpmm(xs, &ts);
        auto yp = par.runSpmm(xs, &tp);
        ASSERT_EQ(ys, yp) << "run " << run;
        expectTimingEq(ts, tp, "spmm timing");
    }
    EXPECT_EQ(statDump(ser), statDump(par));
}

TEST_P(PwalkEquivalence, SymgsBitIdentical)
{
    const Case c = GetParam();
    Rng rng(c.seed + 200);
    CsrMatrix a = gen::banded(101, 5, 0.7, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::SymGs);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);
    ConfigTable bwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Backward);

    Engine ser(makeParams(c.omega, 1, false));
    Engine par(makeParams(c.omega, c.threads, true));

    DenseVector b(a.rows(), 1.0);
    DenseVector xs(a.rows(), 0.0), xp(a.rows(), 0.0);
    for (int run = 0; run < 4; ++run) {
        const ConfigTable &t = run % 2 ? bwd : fwd;
        ser.program(&ld, &t);
        par.program(&ld, &t);
        RunTiming ts, tp;
        ser.runSymgsSweep(b, xs, &ts);
        par.runSymgsSweep(b, xp, &tp);
        ASSERT_EQ(xs, xp) << "sweep " << run;
        expectTimingEq(ts, tp, "symgs timing");
    }
    EXPECT_EQ(statDump(ser), statDump(par));
}

TEST_P(PwalkEquivalence, MixedKernelsShareState)
{
    // Interleave SpMV and SymGS through one engine pair: the partition
    // combine must leave cache, link-stack, and switch state exactly
    // where the serial walk would, or the next kernel diverges.
    const Case c = GetParam();
    CsrMatrix a = gen::stencil2d(9, 9);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::SymGs);
    ConfigTable spmv = ConfigTable::convert(KernelType::SpMV, ld);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);

    Engine ser(makeParams(c.omega, 1, false));
    Engine par(makeParams(c.omega, c.threads, true));

    DenseVector b(a.rows(), 0.5);
    DenseVector xs(a.rows(), 0.0), xp(a.rows(), 0.0);
    for (int run = 0; run < 3; ++run) {
        ser.program(&ld, &spmv);
        par.program(&ld, &spmv);
        RunTiming ts, tp;
        DenseVector ys = ser.runSpmv(b, &ts);
        DenseVector yp = par.runSpmv(b, &tp);
        ASSERT_EQ(ys, yp);
        expectTimingEq(ts, tp, "mixed spmv timing");

        ser.program(&ld, &fwd);
        par.program(&ld, &fwd);
        ser.runSymgsSweep(b, xs, &ts);
        par.runSymgsSweep(b, xp, &tp);
        ASSERT_EQ(xs, xp);
        expectTimingEq(ts, tp, "mixed symgs timing");
    }
    EXPECT_EQ(statDump(ser), statDump(par));
}

// ---------------------------------------------------------------------
// Profiler under partitioning: every bucket identical to the serial
// walk, and the conservation invariant (attributed cycles == engine
// cycles, attributed bytes == memory traffic) holds because the combine
// re-emits attribution from one serial scan.

TEST_P(PwalkEquivalence, ProfileBucketsIdenticalAndConserved)
{
    ProfileGuard guard;
    const Case c = GetParam();
    Rng rng(c.seed + 400);
    CsrMatrix a = gen::blockStructured(96, 8, 4, 0.7, rng);

    auto runProfiled = [&](const AccelParams &params, const char *kernel,
                           uint64_t *cycles, double *bytes) {
        profile::reset();
        Accelerator acc(params);
        if (std::strcmp(kernel, "spmv") == 0) {
            acc.loadSpmvOnly(a);
            acc.spmv(DenseVector(a.cols(), 1.0));
        } else {
            acc.loadPde(a);
            DenseVector b(a.rows(), 1.0), x(a.rows(), 0.0);
            acc.symgsSweep(b, x, GsSweep::Symmetric);
        }
        *cycles = acc.engine().totalCycles();
        *bytes = acc.engine().memory().totalBytes();
        return profile::snapshot();
    };

    for (const char *kernel : {"spmv", "symgs"}) {
        uint64_t cs = 0, cp = 0;
        double bs = 0.0, bp = 0.0;
        profile::Snapshot ss =
            runProfiled(makeParams(c.omega, 1, false), kernel, &cs, &bs);
        profile::Snapshot sp = runProfiled(
            makeParams(c.omega, c.threads, true), kernel, &cp, &bp);
        std::string what = std::string(kernel) + " omega " +
                           std::to_string(c.omega) + " threads " +
                           std::to_string(c.threads);
        expectSameBuckets(ss, sp, what);
        EXPECT_EQ(cs, cp) << what;
        EXPECT_EQ(sp.attributedCycles, cp) << what;
        EXPECT_EQ(double(sp.attributedBytes), bp) << what;
        EXPECT_GT(sp.buckets.size(), 0u) << what;
    }
}

// ---------------------------------------------------------------------
// Timeline under partitioning: the modeled event stream (spans and
// counters on the modeled pid) is identical in content AND order, since
// the combine's serial scan re-emits it exactly as the serial walk
// would have.  Host-pid worker spans are excluded: wall-clock tracks
// legitimately differ across pool sizes.

TEST_P(PwalkEquivalence, ModeledTimelineIdentical)
{
    const Case c = GetParam();
    Rng rng(c.seed + 500);
    CsrMatrix a = gen::banded(101, 5, 0.7, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::SymGs);
    ConfigTable spmv = ConfigTable::convert(KernelType::SpMV, ld);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);

    auto capture = [&](const AccelParams &params) {
        TimelineGuard guard;
        Engine e(params);
        DenseVector b(a.rows(), 0.5);
        DenseVector x(a.rows(), 0.0);
        for (int run = 0; run < 2; ++run) {
            e.program(&ld, &spmv);
            e.runSpmv(b, nullptr);
            e.program(&ld, &fwd);
            e.runSymgsSweep(b, x, nullptr);
        }
        return modeledEvents();
    };

    std::vector<timeline::Event> ser =
        capture(makeParams(c.omega, 1, false));
    std::vector<timeline::Event> par =
        capture(makeParams(c.omega, c.threads, true));
    ASSERT_GT(ser.size(), 0u);
    expectSameModeledEvents(ser, par,
                            "threads " + std::to_string(c.threads));
}

INSTANTIATE_TEST_SUITE_P(
    OmegaThreads, PwalkEquivalence,
    ::testing::Values(Case{4, 1, 21}, Case{4, 2, 22}, Case{4, 4, 23},
                      Case{4, 8, 24}, Case{8, 1, 25}, Case{8, 2, 26},
                      Case{8, 4, 27}, Case{8, 8, 28}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return "w" + std::to_string(info.param.omega) + "_t" +
               std::to_string(info.param.threads);
    });

// ---------------------------------------------------------------------
// Level scheduling with real parallelism: a block-diagonal matrix whose
// blocks coincide with the chunks has fully independent diagonal
// chains, so they all land in ONE level and the pool genuinely runs
// them concurrently -- and the result must still match the serial walk
// bit for bit.

TEST(PwalkSymgsLevels, BlockDiagonalChainsRunConcurrently)
{
    ScopedUnsetParallelEnv envGuard;
    const Index omega = 8;
    const Index blocks = 12;
    CooMatrix coo(blocks * omega, blocks * omega);
    for (Index bi = 0; bi < blocks; ++bi)
        for (Index r = 0; r < omega; ++r)
            for (Index cc = 0; cc < omega; ++cc) {
                Index gr = bi * omega + r;
                Index gc = bi * omega + cc;
                // Diagonally dominant so the sweep is well-posed.
                coo.add(gr, gc,
                        gr == gc ? 16.0 + double(bi)
                                 : 0.25 + 0.01 * double(r + cc));
            }
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, omega, LdLayout::SymGs);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);

    // The level structure is the parallelism proof: every chain is
    // independent, so the compiler must produce a single level.
    AccelParams params = makeParams(omega, 8, true);
    ExecSchedule S = compileSchedule(ld, fwd, params);
    ASSERT_GE(S.levelBegin.size(), 2u);
    EXPECT_EQ(S.levelBegin.size(), 2u)
        << "independent chains should share one level";

    Engine ser(makeParams(omega, 1, false));
    Engine par(params);
    ser.program(&ld, &fwd);
    par.program(&ld, &fwd);

    DenseVector b(a.rows(), 1.0);
    DenseVector xs(a.rows(), 0.0), xp(a.rows(), 0.0);
    for (int sweep = 0; sweep < 3; ++sweep) {
        RunTiming ts, tp;
        ser.runSymgsSweep(b, xs, &ts);
        par.runSymgsSweep(b, xp, &tp);
        ASSERT_EQ(xs, xp) << "sweep " << sweep;
        expectTimingEq(ts, tp, "block-diagonal symgs timing");
    }
    EXPECT_EQ(statDump(ser), statDump(par));
}

// A banded matrix chains its chunks together (each chain reads its
// predecessor's chunk), so levels must be genuine barriers; the sweep
// still matches the serial walk even though every level holds work.

TEST(PwalkSymgsLevels, ChainedLevelsPartitionThePathSequence)
{
    ScopedUnsetParallelEnv envGuard;
    Rng rng(9);
    CsrMatrix a = gen::banded(101, 5, 0.7, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);

    AccelParams params = makeParams(8, 4, true);
    ExecSchedule S = compileSchedule(ld, fwd, params);
    ASSERT_GE(S.levelBegin.size(), 2u);
    EXPECT_EQ(S.levelBegin.front(), 0u);
    EXPECT_EQ(S.levelBegin.back(), S.pathCount);
    for (size_t l = 0; l + 1 < S.levelBegin.size(); ++l)
        EXPECT_LT(S.levelBegin[l], S.levelBegin[l + 1])
            << "empty level " << l;
    // The band couples neighbouring chunks, so the chain dependence is
    // real and the compiler must emit more than one level.
    EXPECT_GT(S.levelBegin.size(), 2u);
}

// ---------------------------------------------------------------------
// Partition boundaries are schedule constants: recompiling under
// different thread counts yields the identical decomposition, which is
// the root of the determinism guarantee.

TEST(PwalkPartitions, BoundariesAreScheduleConstantsNotThreadCounts)
{
    ScopedUnsetParallelEnv envGuard;
    Rng rng(5);
    CsrMatrix a = gen::blockStructured(256, 8, 6, 0.6, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    ExecSchedule s1 = compileSchedule(ld, table, makeParams(8, 1, true));
    ExecSchedule s8 = compileSchedule(ld, table, makeParams(8, 8, true));

    ASSERT_GE(s1.partBegin.size(), 2u);
    EXPECT_EQ(s1.partBegin, s8.partBegin);
    EXPECT_LE(s1.partBegin.size(), kTimingPartitions + 1);
    EXPECT_EQ(s1.partBegin.front(), 0u);
    EXPECT_EQ(s1.partBegin.back(), s1.pathCount);
    for (size_t p = 0; p + 1 < s1.partBegin.size(); ++p)
        EXPECT_LT(s1.partBegin[p], s1.partBegin[p + 1])
            << "empty partition " << p;
}

// ---------------------------------------------------------------------
// The environment override: ALR_PARALLEL_TIMING forces the walk on for
// engines constructed while it is set (the CI lever), and "0" / unset
// leave the programmatic choice alone.

TEST(PwalkEnv, EnvVarForcesParallelTimingOn)
{
    ScopedUnsetParallelEnv envGuard;

    Engine off(makeParams(8, 1, false));
    EXPECT_FALSE(off.params().parallelTiming);

    setenv("ALR_PARALLEL_TIMING", "1", 1);
    Engine forced(makeParams(8, 1, false));
    EXPECT_TRUE(forced.params().parallelTiming);

    setenv("ALR_PARALLEL_TIMING", "0", 1);
    Engine zero(makeParams(8, 1, false));
    EXPECT_FALSE(zero.params().parallelTiming);

    Engine prog(makeParams(8, 1, true));
    EXPECT_TRUE(prog.params().parallelTiming);

    unsetenv("ALR_PARALLEL_TIMING");
}
