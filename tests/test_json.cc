/**
 * @file
 * Strict JSON reader tests: the round-trip contract
 * (parse(dump(x)) == x) exercised on hand-built values and on every
 * document the repo actually emits (sim report, cycle-accounting
 * profile, metrics snapshot), plus the rejection matrix -- truncation
 * at every byte offset, bad escapes, duplicate keys, and the number
 * grammar edge cases RFC 8259 is strict about.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "alrescha/accelerator.hh"
#include "alrescha/report.hh"
#include "alrescha/sim/profile.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "common/version.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

json::Value
parseOk(const std::string &text)
{
    json::Parsed p = json::parse(text);
    EXPECT_TRUE(p.ok) << text << "\n  error: " << p.error << " at offset "
                      << p.offset;
    return p.value;
}

void
expectReject(const std::string &text, const char *why)
{
    json::Parsed p = json::parse(text);
    EXPECT_FALSE(p.ok) << why << ": accepted " << text;
    if (!p.ok) {
        EXPECT_FALSE(p.error.empty()) << why;
        EXPECT_LE(p.offset, text.size()) << why;
    }
}

/** parse -> dump -> parse must reproduce the value exactly. */
void
expectRoundTrip(const std::string &text)
{
    json::Value v = parseOk(text);
    std::string dumped = json::dump(v);
    json::Value again = parseOk(dumped);
    EXPECT_EQ(v, again) << "round trip drifted for:\n" << text;
    // dump is a fixed point: dumping the reparsed value is identical.
    EXPECT_EQ(dumped, json::dump(again));
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_EQ(parseOk("42").asInt(), 42);
    EXPECT_EQ(parseOk("-7").asInt(), -7);
    EXPECT_EQ(parseOk("0").asInt(), 0);
    EXPECT_DOUBLE_EQ(parseOk("2.5").asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(parseOk("1e3").asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(parseOk("-1.25e-2").asDouble(), -0.0125);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
    EXPECT_EQ(parseOk("  \"pad\"  ").asString(), "pad");
}

TEST(JsonParse, Int64Boundaries)
{
    json::Value v = parseOk("9223372036854775807");
    EXPECT_TRUE(v.isInt());
    EXPECT_EQ(v.asInt(), std::numeric_limits<int64_t>::max());

    v = parseOk("-9223372036854775808");
    EXPECT_TRUE(v.isInt());
    EXPECT_EQ(v.asInt(), std::numeric_limits<int64_t>::min());

    // One past the boundary no longer fits int64: parsed as a double,
    // not rejected, matching what a python emitter can produce.
    v = parseOk("9223372036854775808");
    EXPECT_EQ(v.kind(), json::Kind::Double);
    EXPECT_DOUBLE_EQ(v.asDouble(), 9223372036854775808.0);
}

TEST(JsonParse, NumberEdgeCases)
{
    EXPECT_EQ(parseOk("-0").asInt(), 0);
    EXPECT_DOUBLE_EQ(parseOk("-0.0").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(parseOk("1e308").asDouble(), 1e308);
    EXPECT_DOUBLE_EQ(parseOk("5e-324").asDouble(), 5e-324);

    expectReject("1e999", "overflow to infinity");
    expectReject("-1e999", "overflow to -infinity");
    expectReject("01", "leading zero");
    expectReject("-01", "leading zero after sign");
    expectReject("1.", "bare fraction point");
    expectReject(".5", "missing integer part");
    expectReject("+1", "leading plus");
    expectReject("1e", "empty exponent");
    expectReject("1e+", "empty signed exponent");
    expectReject("NaN", "non-standard NaN");
    expectReject("Infinity", "non-standard Infinity");
    expectReject("0x10", "hex literal");
}

TEST(JsonParse, Strings)
{
    EXPECT_EQ(parseOk(R"("a\"b\\c\/d")").asString(), "a\"b\\c/d");
    EXPECT_EQ(parseOk(R"("\b\f\n\r\t")").asString(), "\b\f\n\r\t");
    EXPECT_EQ(parseOk(R"("A")").asString(), "A");
    EXPECT_EQ(parseOk(R"("é")").asString(), "\xc3\xa9");
    EXPECT_EQ(parseOk(R"("€")").asString(), "\xe2\x82\xac");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parseOk(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");

    expectReject(R"("\x41")", "unknown escape");
    expectReject(R"("\u12")", "short hex escape");
    expectReject(R"("\u12g4")", "non-hex digit in escape");
    expectReject(R"("\ud800")", "lone high surrogate");
    expectReject(R"("\ud800A")", "high surrogate + non-low");
    expectReject(R"("\udc00")", "lone low surrogate");
    expectReject("\"a\nb\"", "raw newline in string");
    expectReject(std::string("\"a\tb\""), "raw tab in string");
    expectReject("\"unterminated", "unterminated string");
}

TEST(JsonParse, Structure)
{
    json::Value v = parseOk(R"({"a": 1, "b": [true, null], "c": {}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "a"); // insertion order preserved
    EXPECT_EQ(v.members()[1].first, "b");
    EXPECT_EQ(v.intAt("a"), 1);
    EXPECT_EQ(v.intAt("missing", -5), -5);
    ASSERT_NE(v.find("b"), nullptr);
    EXPECT_EQ(v.find("b")->elements().size(), 2u);
    EXPECT_EQ(v.find("nope"), nullptr);

    expectReject(R"({"a": 1, "a": 2})", "duplicate key");
    expectReject(R"({"a": 1,})", "trailing comma in object");
    expectReject("[1, 2,]", "trailing comma in array");
    expectReject("[1 2]", "missing comma");
    expectReject(R"({"a" 1})", "missing colon");
    expectReject("{1: 2}", "non-string key");
    expectReject("[1] [2]", "trailing content");
    expectReject("", "empty input");
    expectReject("   ", "whitespace-only input");
}

TEST(JsonParse, DepthLimit)
{
    std::string deep(300, '[');
    deep += std::string(300, ']');
    expectReject(deep, "past depth limit");

    std::string ok(100, '[');
    ok += "1" + std::string(100, ']');
    EXPECT_TRUE(json::parse(ok).ok);
}

TEST(JsonParse, ErrorOffsets)
{
    json::Parsed p = json::parse("[1, x]");
    ASSERT_FALSE(p.ok);
    EXPECT_EQ(p.offset, 4u);

    p = json::parse(R"({"k": 1, "k": 2})");
    ASSERT_FALSE(p.ok);
    // The duplicate is detected at (or after) the second key.
    EXPECT_GE(p.offset, 9u);
}

TEST(JsonRoundTrip, HandBuilt)
{
    expectRoundTrip(R"({"i": 7, "d": 0.1, "neg": -3.25e-7,
                        "big": 9007199254740993,
                        "s": "q\"\\€", "a": [1, 2.5, "x", null],
                        "o": {"nested": [{"deep": true}]}})");
    expectRoundTrip("[]");
    expectRoundTrip("{}");
    expectRoundTrip("[0.30000000000000004]");
    expectRoundTrip("[1e308, 5e-324, -0.0]");
}

TEST(JsonRoundTrip, IntegralDoubleStaysDouble)
{
    // 2.0 must dump as "2.0", not "2" -- otherwise the round trip
    // silently changes Kind::Double into Kind::Int.
    json::Value v = parseOk("[2.0]");
    ASSERT_EQ(v.elements()[0].kind(), json::Kind::Double);
    std::string dumped = json::dump(v);
    EXPECT_NE(dumped.find("2.0"), std::string::npos) << dumped;
    json::Value again = parseOk(dumped);
    EXPECT_EQ(again.elements()[0].kind(), json::Kind::Double);
    EXPECT_EQ(v, again);
}

TEST(JsonRoundTrip, CrossKindNumericEquality)
{
    // An Int and a Double holding the same value compare equal, so
    // artifacts written by different emitters still self-diff empty.
    EXPECT_EQ(parseOk("2"), parseOk("2.0"));
    EXPECT_NE(parseOk("2"), parseOk("2.5"));
}

TEST(JsonRoundTrip, TruncationAtEveryOffsetRejected)
{
    const std::string doc =
        R"({"schema_version": 1, "cycles": 3484, "buckets":)"
        R"( [{"dp": "GEMV", "cycles": 10}], "note": "a€b"})";
    ASSERT_TRUE(json::parse(doc).ok);
    // Every strict prefix of an object document is incomplete: the
    // parser must reject all of them, never crash, never accept.
    for (size_t n = 0; n < doc.size(); ++n) {
        json::Parsed p = json::parse(doc.substr(0, n));
        EXPECT_FALSE(p.ok) << "accepted " << n << "-byte prefix";
    }
}

TEST(JsonRoundTrip, SimReportDocument)
{
    CsrMatrix a = gen::stencil2d(16, 16);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(DenseVector(a.cols(), 1.0));

    SimReportOptions opt;
    opt.utilization = true;
    opt.stats = true;
    std::ostringstream os;
    writeSimReportJson(os, acc, opt);

    json::Value doc = parseOk(os.str());
    EXPECT_EQ(doc.intAt("schema_version"), version::kJsonSchemaVersion);
    EXPECT_GT(doc.intAt("cycles"), 0);
    EXPECT_NE(doc.find("energy_breakdown"), nullptr);
    expectRoundTrip(os.str());
}

TEST(JsonRoundTrip, ProfileDocument)
{
    profile::reset();
    profile::setEnabled(true);
    CsrMatrix a = gen::stencil2d(12, 12);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(DenseVector(a.cols(), 1.0));

    profile::ExportMeta meta;
    meta.kernel = "spmv";
    meta.omega = acc.params().omega;
    meta.totalCycles = acc.engine().totalCycles();
    std::ostringstream os;
    profile::exportJson(os, meta);
    profile::setEnabled(false);
    profile::reset();

    json::Value doc = parseOk(os.str());
    EXPECT_EQ(doc.intAt("schema_version"), version::kJsonSchemaVersion);
    EXPECT_EQ(doc.intAt("total_cycles"), doc.intAt("attributed_cycles"));
    expectRoundTrip(os.str());
}

TEST(JsonRoundTrip, MetricsDocument)
{
    metrics::Registry reg;
    reg.counter("test_requests_total", "requests").add(3.0);
    reg.gauge("test_depth", "queue depth").set(2.5);
    metrics::Histogram &h = reg.histogram("test_latency_us", "latency");
    h.observe(10.0);
    h.observe(250.0);

    std::ostringstream os;
    reg.writeJson(os);

    json::Value doc = parseOk(os.str());
    EXPECT_EQ(doc.intAt("schema_version"), version::kJsonSchemaVersion);
    ASSERT_NE(doc.find("metrics"), nullptr);
    EXPECT_FALSE(doc.find("metrics")->elements().empty());
    expectRoundTrip(os.str());
}

TEST(JsonValue, BuilderApi)
{
    json::Value obj = json::Value::object();
    obj.set("n", json::Value(int64_t{5}));
    obj.set("name", json::Value(std::string("x")));
    json::Value arr = json::Value::array();
    arr.append(json::Value(1.5));
    arr.append(json::Value(true));
    obj.set("list", std::move(arr));

    std::string dumped = json::dump(obj);
    json::Value again = parseOk(dumped);
    EXPECT_EQ(obj, again);
    EXPECT_EQ(again.intAt("n"), 5);
    EXPECT_EQ(again.stringAt("name"), "x");
    EXPECT_DOUBLE_EQ(again.numberAt("n"), 5.0);
}

} // namespace
