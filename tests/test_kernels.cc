/**
 * @file
 * Reference-kernel validation: SpMV against dense multiply, Gauss-Seidel
 * convergence properties, and full PCG solves on SPD systems.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "kernels/blas1.hh"
#include "kernels/pcg.hh"
#include "kernels/spmv.hh"
#include "kernels/symgs.hh"
#include "sparse/coo.hh"
#include "sparse/dense.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

DenseVector
randomVector(Index n, uint64_t seed)
{
    Rng rng(seed);
    DenseVector v(n);
    for (auto &e : v)
        e = rng.nextDouble(-1.0, 1.0);
    return v;
}

TEST(Blas1, DotAxpyNorm)
{
    DenseVector x = {1.0, 2.0, 3.0};
    DenseVector y = {4.0, -5.0, 6.0};
    EXPECT_DOUBLE_EQ(dot(x, y), 12.0);
    axpy(2.0, x, y);
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    EXPECT_DOUBLE_EQ(y[2], 12.0);
    EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
    xpby(x, 0.5, y);
    EXPECT_DOUBLE_EQ(y[0], 4.0);
}

TEST(Spmv, MatchesDenseMultiply)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSparse(20, 15, 4, rng);
    DenseVector x = randomVector(15, 2);
    DenseVector ys = spmv(a, x);
    DenseVector yd = a.toDense().multiply(x);
    ASSERT_EQ(ys.size(), yd.size());
    for (size_t i = 0; i < ys.size(); ++i)
        EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Spmv, AddAccumulates)
{
    Rng rng(3);
    CsrMatrix a = gen::randomSparse(10, 10, 3, rng);
    DenseVector x = randomVector(10, 4);
    DenseVector y0 = randomVector(10, 5);
    DenseVector y = spmvAdd(a, x, y0);
    DenseVector base = spmv(a, x);
    for (Index i = 0; i < 10; ++i)
        EXPECT_NEAR(y[i], base[i] + y0[i], 1e-12);
}

TEST(SymGs, ExactOnDiagonalMatrix)
{
    // For a diagonal matrix one sweep solves exactly.
    CooMatrix coo(4, 4);
    for (Index i = 0; i < 4; ++i)
        coo.add(i, i, Value(i + 1));
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    DenseVector b = {1.0, 4.0, 9.0, 16.0};
    DenseVector x(4, 0.0);
    gaussSeidelSweep(a, b, x, GsSweep::Forward);
    for (Index i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(x[i], b[i] / Value(i + 1));
}

TEST(SymGs, ForwardSweepMatchesManualTridiagonal)
{
    // 3x3 tridiagonal, hand-computed forward sweep from x = 0.
    CsrMatrix a = gen::tridiagonal(3); // diag 2, off -1
    DenseVector b = {1.0, 2.0, 3.0};
    DenseVector x(3, 0.0);
    gaussSeidelSweep(a, b, x, GsSweep::Forward);
    EXPECT_DOUBLE_EQ(x[0], 0.5);
    EXPECT_DOUBLE_EQ(x[1], 1.25);
    EXPECT_DOUBLE_EQ(x[2], 2.125);
}

TEST(SymGs, IterationConvergesOnSpdSystem)
{
    Rng rng(6);
    CsrMatrix a = gen::banded(40, 3, 0.7, rng);
    DenseVector xTrue = randomVector(40, 7);
    DenseVector b = spmv(a, xTrue);
    DenseVector x(40, 0.0);
    Value prev = 1e30;
    for (int it = 0; it < 50; ++it) {
        gaussSeidelSweep(a, b, x, GsSweep::Symmetric);
        DenseVector r = spmv(a, x);
        for (Index i = 0; i < 40; ++i)
            r[i] -= b[i];
        Value res = norm2(r);
        EXPECT_LE(res, prev * (1.0 + 1e-12));
        prev = res;
    }
    EXPECT_LT(prev, 1e-6);
}

TEST(SymGs, SymmetricSweepEqualsForwardThenBackward)
{
    Rng rng(8);
    CsrMatrix a = gen::banded(25, 2, 0.8, rng);
    DenseVector b = randomVector(25, 9);
    DenseVector x1(25, 0.1), x2(25, 0.1);
    gaussSeidelSweep(a, b, x1, GsSweep::Symmetric);
    gaussSeidelSweep(a, b, x2, GsSweep::Forward);
    gaussSeidelSweep(a, b, x2, GsSweep::Backward);
    for (Index i = 0; i < 25; ++i)
        EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

TEST(Pcg, SolvesIdentityInOneIteration)
{
    CooMatrix coo(5, 5);
    for (Index i = 0; i < 5; ++i)
        coo.add(i, i, 1.0);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    DenseVector b = {1.0, 2.0, 3.0, 4.0, 5.0};
    PcgResult res = pcgSolve(a, b);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 2);
    for (Index i = 0; i < 5; ++i)
        EXPECT_NEAR(res.x[i], b[i], 1e-9);
}

TEST(Pcg, SolvesPoisson2d)
{
    CsrMatrix a = gen::stencil2d(12, 12, 5);
    DenseVector xTrue = randomVector(144, 10);
    DenseVector b = spmv(a, xTrue);
    PcgResult res = pcgSolve(a, b);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(maxAbsDiff(res.x, xTrue), 1e-6);
}

TEST(Pcg, SolvesPoisson3dStencil27)
{
    CsrMatrix a = gen::stencil3d(6, 6, 6, 27);
    DenseVector xTrue = randomVector(216, 11);
    DenseVector b = spmv(a, xTrue);
    PcgResult res = pcgSolve(a, b);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(maxAbsDiff(res.x, xTrue), 1e-6);
}

TEST(Pcg, PreconditioningReducesIterations)
{
    CsrMatrix a = gen::stencil2d(16, 16, 5);
    DenseVector b(256, 1.0);
    PcgOptions plain;
    plain.precondition = false;
    PcgOptions pre;
    pre.precondition = true;
    PcgResult r0 = pcgSolve(a, b, plain);
    PcgResult r1 = pcgSolve(a, b, pre);
    EXPECT_TRUE(r0.converged);
    EXPECT_TRUE(r1.converged);
    EXPECT_LT(r1.iterations, r0.iterations);
}

TEST(Pcg, ResidualHistoryIsRecorded)
{
    CsrMatrix a = gen::stencil2d(8, 8, 5);
    DenseVector b(64, 1.0);
    PcgResult res = pcgSolve(a, b);
    ASSERT_EQ(int(res.history.size()), res.iterations);
    EXPECT_LT(res.history.back(), 1e-9);
}

/** Property sweep: PCG recovers random solutions on random SPD systems. */
class PcgProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PcgProperty, RecoversSolution)
{
    Rng rng(GetParam());
    CsrMatrix a = gen::randomSpd(30 + Index(GetParam() % 20), 5, rng);
    DenseVector xTrue = randomVector(a.rows(), GetParam() + 100);
    DenseVector b = spmv(a, xTrue);
    PcgResult res = pcgSolve(a, b);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(maxAbsDiff(res.x, xTrue), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcgProperty,
                         ::testing::Range<uint64_t>(20, 32));

} // namespace
} // namespace alr
