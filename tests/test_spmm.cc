/**
 * @file
 * SpMM tests: functional equivalence with k independent SpMVs, and
 * the amortization property (matrix payload streams once per call).
 */

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "kernels/spmv.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

std::vector<DenseVector>
randomRhs(Index n, size_t k, uint64_t seed)
{
    Rng rng(seed);
    std::vector<DenseVector> xs(k, DenseVector(n));
    for (auto &x : xs) {
        for (auto &e : x)
            e = rng.nextDouble(-1.0, 1.0);
    }
    return xs;
}

TEST(Spmm, MatchesIndependentSpmvs)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSparse(50, 40, 5, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);

    auto xs = randomRhs(40, 4, 2);
    auto ys = acc.spmm(xs);
    ASSERT_EQ(ys.size(), 4u);
    for (size_t j = 0; j < 4; ++j) {
        DenseVector want = spmv(a, xs[j]);
        for (Index i = 0; i < 50; ++i)
            EXPECT_NEAR(ys[j][i], want[i], 1e-11) << "rhs " << j;
    }
}

TEST(Spmm, SingleRhsEqualsSpmv)
{
    Rng rng(3);
    CsrMatrix a = gen::banded(64, 6, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    auto xs = randomRhs(64, 1, 4);
    DenseVector viaSpmm = acc.spmm(xs)[0];
    DenseVector viaSpmv = acc.spmv(xs[0]);
    EXPECT_EQ(viaSpmm, viaSpmv);
}

TEST(Spmm, MatrixStreamsOncePerCall)
{
    Rng rng(5);
    CsrMatrix a = gen::blockStructured(256, 8, 3, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);

    auto one = randomRhs(256, 1, 6);
    acc.resetStats();
    acc.spmm(one);
    double bytes1 = acc.engine().memory().bytesStreamed();

    auto four = randomRhs(256, 4, 7);
    acc.resetStats();
    acc.spmm(four);
    double bytes4 = acc.engine().memory().bytesStreamed();

    EXPECT_DOUBLE_EQ(bytes4, bytes1); // payload independent of k
}

TEST(Spmm, AmortizesMemoryBoundSpmv)
{
    // Low-fill blocks make single-RHS SpMV issue-bound at ~1 row per
    // cycle with mostly wasted stream slots; with k RHS the per-RHS
    // cycle cost must drop.
    Rng rng(8);
    CsrMatrix a = gen::blockStructured(512, 8, 4, 0.3, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);

    acc.resetStats();
    acc.spmm(randomRhs(512, 1, 9));
    double c1 = double(acc.engine().totalCycles());

    acc.resetStats();
    acc.spmm(randomRhs(512, 8, 10));
    double c8 = double(acc.engine().totalCycles());

    EXPECT_LT(c8 / 8.0, c1 * 0.95);
}

TEST(Spmm, WorksThroughPdeLayout)
{
    Rng rng(11);
    CsrMatrix a = gen::randomSpd(48, 4, rng);
    Accelerator acc;
    acc.loadPde(a);
    auto xs = randomRhs(48, 3, 12);
    auto ys = acc.spmm(xs);
    for (size_t j = 0; j < 3; ++j) {
        DenseVector want = spmv(a, xs[j]);
        for (Index i = 0; i < 48; ++i)
            EXPECT_NEAR(ys[j][i], want[i], 1e-11);
    }
}

TEST(SpmmDeath, EmptyRhsListPanics)
{
    Rng rng(13);
    CsrMatrix a = gen::banded(32, 3, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    EXPECT_DEATH(acc.spmm({}), "at least one");
}

} // namespace
} // namespace alr
