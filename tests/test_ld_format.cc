/**
 * @file
 * Locally-dense format tests: encode/decode round trips, block and value
 * ordering per §4.5, diagonal separation, and the BCSR metadata parity
 * claim.
 */

#include <gtest/gtest.h>

#include "alrescha/format.hh"
#include "common/random.hh"
#include "sparse/bcsr.hh"
#include "sparse/coo.hh"
#include "sparse/dense.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

CsrMatrix
smallSpd(Index n, uint64_t seed)
{
    Rng rng(seed);
    return gen::randomSpd(n, 4, rng);
}

TEST(LdFormat, PlainRoundTrip)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSparse(30, 22, 4, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    EXPECT_EQ(ld.decode(), a);
    EXPECT_EQ(ld.scalarNnz(), a.nnz());
}

TEST(LdFormat, SymGsRoundTrip)
{
    CsrMatrix a = smallSpd(29, 2);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    EXPECT_EQ(ld.decode(), a);
}

class LdRoundTrip
    : public ::testing::TestWithParam<std::tuple<Index, uint64_t, int>>
{
};

TEST_P(LdRoundTrip, EncodeDecodeIdentity)
{
    auto [omega, seed, layout_int] = GetParam();
    LdLayout layout = layout_int ? LdLayout::SymGs : LdLayout::Plain;
    CsrMatrix a = smallSpd(41, seed);
    auto ld = LocallyDenseMatrix::encode(a, omega, layout);
    EXPECT_EQ(ld.decode(), a)
        << "omega=" << omega << " layout=" << layout_int;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LdRoundTrip,
    ::testing::Combine(::testing::Values<Index>(2, 3, 4, 8, 16),
                       ::testing::Values<uint64_t>(5, 6, 7),
                       ::testing::Values(0, 1)));

TEST(LdFormat, BlockOrderPutsDiagonalLast)
{
    CsrMatrix a = smallSpd(24, 3);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    Index prevRow = 0;
    bool sawDiag = false;
    for (const LdBlockInfo &blk : ld.blocks()) {
        if (blk.blockRow != prevRow) {
            EXPECT_TRUE(sawDiag) << "block row " << prevRow
                                 << " must end with its diagonal";
            prevRow = blk.blockRow;
            sawDiag = false;
        }
        if (blk.isDiagonal()) {
            sawDiag = true;
        } else {
            EXPECT_FALSE(sawDiag)
                << "off-diagonal after diagonal in row " << blk.blockRow;
        }
    }
    EXPECT_TRUE(sawDiag);
}

TEST(LdFormat, UpperBlockValuesAreReversedWithinRows)
{
    // Build a matrix with one known upper-triangle block.
    CooMatrix coo(8, 8);
    for (Index i = 0; i < 8; ++i)
        coo.add(i, i, 10.0);
    // Block (0, 1) with omega=4: values at rows 0..3, cols 4..7.
    coo.add(0, 4, 1.0);
    coo.add(0, 5, 2.0);
    coo.add(0, 6, 3.0);
    coo.add(0, 7, 4.0);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    auto ld = LocallyDenseMatrix::encode(a, 4, LdLayout::SymGs);

    const LdBlockInfo *upper = nullptr;
    for (const auto &blk : ld.blocks()) {
        if (blk.blockRow == 0 && blk.blockCol == 1)
            upper = &blk;
    }
    ASSERT_NE(upper, nullptr);
    // Stream order of row 0 must be reversed: 4, 3, 2, 1.
    const auto &s = ld.stream();
    EXPECT_DOUBLE_EQ(s[upper->offset + 0], 4.0);
    EXPECT_DOUBLE_EQ(s[upper->offset + 1], 3.0);
    EXPECT_DOUBLE_EQ(s[upper->offset + 2], 2.0);
    EXPECT_DOUBLE_EQ(s[upper->offset + 3], 1.0);
}

TEST(LdFormat, LowerBlockValuesKeepOriginalOrder)
{
    CooMatrix coo(8, 8);
    for (Index i = 0; i < 8; ++i)
        coo.add(i, i, 10.0);
    coo.add(4, 0, 1.0);
    coo.add(4, 1, 2.0);
    coo.add(4, 2, 3.0);
    coo.add(4, 3, 4.0);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    auto ld = LocallyDenseMatrix::encode(a, 4, LdLayout::SymGs);

    const LdBlockInfo *lower = nullptr;
    for (const auto &blk : ld.blocks()) {
        if (blk.blockRow == 1 && blk.blockCol == 0)
            lower = &blk;
    }
    ASSERT_NE(lower, nullptr);
    EXPECT_DOUBLE_EQ(ld.stream()[lower->offset + 0], 1.0);
    EXPECT_DOUBLE_EQ(ld.stream()[lower->offset + 1], 2.0);
    EXPECT_DOUBLE_EQ(ld.stream()[lower->offset + 2], 3.0);
    EXPECT_DOUBLE_EQ(ld.stream()[lower->offset + 3], 4.0);
}

TEST(LdFormat, DiagonalIsSeparatedAndExcludedFromStream)
{
    CsrMatrix a = smallSpd(16, 4);
    auto ld = LocallyDenseMatrix::encode(a, 4, LdLayout::SymGs);
    ASSERT_EQ(ld.diagonal().size(), 16u);
    for (Index r = 0; r < 16; ++r)
        EXPECT_DOUBLE_EQ(ld.diagonal()[r], a.at(r, r));
    // Diagonal blocks store omega*(omega-1) values.
    for (const auto &blk : ld.blocks()) {
        if (blk.isDiagonal())
            EXPECT_EQ(blk.size, 4u * 3u);
        else
            EXPECT_EQ(blk.size, 16u);
    }
}

TEST(LdFormat, DiagonalBlockRowsStoredRightToLeft)
{
    // Diagonal block with known off-diagonal values in row 2.
    CooMatrix coo(4, 4);
    for (Index i = 0; i < 4; ++i)
        coo.add(i, i, 10.0);
    coo.add(2, 0, 1.0);
    coo.add(2, 1, 2.0);
    coo.add(2, 3, 3.0);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    auto ld = LocallyDenseMatrix::encode(a, 4, LdLayout::SymGs);
    ASSERT_EQ(ld.blocks().size(), 1u);
    const LdBlockInfo &blk = ld.blocks()[0];
    // Row 2 (length 3, r2l skipping diagonal): cols 3, 1, 0.
    size_t base = blk.offset + 2 * 3;
    EXPECT_DOUBLE_EQ(ld.stream()[base + 0], 3.0);
    EXPECT_DOUBLE_EQ(ld.stream()[base + 1], 2.0);
    EXPECT_DOUBLE_EQ(ld.stream()[base + 2], 1.0);
}

TEST(LdFormat, MetadataMatchesBcsrBudget)
{
    CsrMatrix a = smallSpd(64, 8);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    BcsrMatrix b = BcsrMatrix::fromCsr(a, 8);
    // Same counting scheme: one pointer per block row + one column index
    // per stored block (paper: "the same meta-data overhead").
    EXPECT_EQ(ld.metadataBytes(), b.metadataBytes());
    EXPECT_EQ(Index(ld.blocks().size()), b.numBlocks());
}

TEST(LdFormat, BlockDensityBounds)
{
    CsrMatrix dense8 = CsrMatrix::fromDense(DenseMatrix(8, 8, 1.0));
    auto ld = LocallyDenseMatrix::encode(dense8, 8, LdLayout::Plain);
    EXPECT_DOUBLE_EQ(ld.blockDensity(), 1.0);

    CsrMatrix a = gen::tridiagonal(64);
    auto ld2 = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    EXPECT_GT(ld2.blockDensity(), 0.0);
    EXPECT_LT(ld2.blockDensity(), 0.5);
}

TEST(LdFormat, NonMultipleDimensionsArePadded)
{
    CsrMatrix a = smallSpd(13, 9);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    EXPECT_EQ(ld.blockRows(), 2u);
    EXPECT_EQ(ld.decode(), a);
}

TEST(LdFormat, StreamBytesAccountsDenseBlocks)
{
    CsrMatrix a = gen::tridiagonal(32);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    size_t expected = 0;
    for (const auto &blk : ld.blocks())
        expected += blk.size * sizeof(Value);
    EXPECT_EQ(ld.streamBytes(), expected);
}

} // namespace
} // namespace alr
