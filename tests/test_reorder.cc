/**
 * @file
 * Reordering-pass tests: RCM validity and bandwidth reduction, degree
 * ordering, and the vector permutation helpers.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "kernels/spmv.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"
#include "sparse/pattern_stats.hh"
#include "sparse/reorder.hh"

namespace alr {
namespace {

bool
isPermutation(const std::vector<Index> &perm)
{
    std::vector<bool> seen(perm.size(), false);
    for (Index v : perm) {
        if (v >= perm.size() || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

TEST(Rcm, ProducesAValidPermutation)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSpd(120, 5, rng);
    auto perm = reverseCuthillMcKee(a);
    ASSERT_EQ(perm.size(), a.rows());
    EXPECT_TRUE(isPermutation(perm));
}

TEST(Rcm, ReducesBandwidthOfShuffledBandedMatrix)
{
    // A banded matrix scrambled by a random symmetric permutation: RCM
    // must recover a narrow band.
    Rng rng(2);
    CsrMatrix banded = gen::banded(256, 4, 0.9, rng);
    std::vector<Index> shuffle;
    for (auto v : rng.permutation(256))
        shuffle.push_back(v);
    CsrMatrix scrambled = banded.permuted(shuffle);

    Index before = analyzePattern(scrambled, 8).bandwidth;
    CsrMatrix restored = scrambled.permuted(reverseCuthillMcKee(scrambled));
    Index after = analyzePattern(restored, 8).bandwidth;
    EXPECT_LT(after, before / 4);
}

TEST(Rcm, RaisesBlockFillOnScrambledStructure)
{
    Rng rng(3);
    CsrMatrix banded = gen::banded(512, 6, 0.8, rng);
    std::vector<Index> shuffle;
    for (auto v : rng.permutation(512))
        shuffle.push_back(v);
    CsrMatrix scrambled = banded.permuted(shuffle);

    double before = analyzePattern(scrambled, 8).blockDensity;
    CsrMatrix restored =
        scrambled.permuted(reverseCuthillMcKee(scrambled));
    double after = analyzePattern(restored, 8).blockDensity;
    EXPECT_GT(after, 2.0 * before);
}

TEST(Rcm, HandlesDisconnectedComponents)
{
    // Two disjoint chains.
    CooMatrix coo(10, 10);
    for (Index i = 0; i < 4; ++i) {
        coo.add(i, i + 1, 1.0);
        coo.add(i + 1, i, 1.0);
    }
    for (Index i = 5; i < 9; ++i) {
        coo.add(i, i + 1, 1.0);
        coo.add(i + 1, i, 1.0);
    }
    for (Index i = 0; i < 10; ++i)
        coo.add(i, i, 2.0);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    auto perm = reverseCuthillMcKee(a);
    EXPECT_TRUE(isPermutation(perm));
}

TEST(DegreeDescending, SortsByRowNnz)
{
    Rng rng(4);
    CsrMatrix g = gen::powerLawGraph(200, 6, 1.0, rng);
    auto perm = degreeDescending(g);
    EXPECT_TRUE(isPermutation(perm));
    for (size_t i = 1; i < perm.size(); ++i)
        EXPECT_GE(g.rowNnz(perm[i - 1]), g.rowNnz(perm[i]));
}

TEST(Permute, VectorRoundTrip)
{
    Rng rng(5);
    DenseVector v(50);
    for (auto &e : v)
        e = rng.nextDouble();
    std::vector<Index> perm;
    for (auto p : rng.permutation(50))
        perm.push_back(p);
    EXPECT_EQ(unpermuteVector(permuteVector(v, perm), perm), v);
}

TEST(Permute, SolvesPermutedSystemConsistently)
{
    // Solve A x = b and (PAP^T)(Px) = Pb: results must correspond.
    Rng rng(6);
    CsrMatrix a = gen::banded(64, 3, 0.8, rng);
    DenseVector x(64);
    for (auto &e : x)
        e = rng.nextDouble();
    DenseVector b = spmv(a, x);

    auto perm = reverseCuthillMcKee(a);
    CsrMatrix ap = a.permuted(perm);
    DenseVector bp = permuteVector(b, perm);
    DenseVector xp = permuteVector(x, perm);
    DenseVector got = spmv(ap, xp);
    for (Index i = 0; i < 64; ++i)
        EXPECT_NEAR(got[i], bp[i], 1e-10);
}

TEST(IdentityOrder, IsIdentity)
{
    auto perm = identityOrder(7);
    for (Index i = 0; i < 7; ++i)
        EXPECT_EQ(perm[i], i);
}

} // namespace
} // namespace alr
