/**
 * @file
 * Eigen-solver tests: closed-form spectra, power iteration vs Lanczos
 * agreement, tridiagonal bisection, and accelerated SpMV integration.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "kernels/eigen.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

TEST(TridiagEigen, DiagonalMatrixIsItsDiagonal)
{
    std::vector<Value> alpha = {3.0, -1.0, 7.0};
    std::vector<Value> beta = {0.0, 0.0};
    auto eig = tridiagonalEigenvalues(alpha, beta);
    EXPECT_NEAR(eig[0], -1.0, 1e-9);
    EXPECT_NEAR(eig[1], 3.0, 1e-9);
    EXPECT_NEAR(eig[2], 7.0, 1e-9);
}

TEST(TridiagEigen, KnownTwoByTwo)
{
    // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
    auto eig = tridiagonalEigenvalues({2.0, 2.0}, {1.0});
    EXPECT_NEAR(eig[0], 1.0, 1e-9);
    EXPECT_NEAR(eig[1], 3.0, 1e-9);
}

TEST(TridiagEigen, DiscreteLaplacianClosedForm)
{
    // The n-point 1D Laplacian (2, -1) has eigenvalues
    // 2 - 2 cos(k pi / (n+1)).
    const int n = 12;
    std::vector<Value> alpha(n, 2.0), beta(n - 1, -1.0);
    auto eig = tridiagonalEigenvalues(alpha, beta);
    for (int k = 1; k <= n; ++k) {
        Value want =
            2.0 - 2.0 * std::cos(std::numbers::pi * k / (n + 1));
        EXPECT_NEAR(eig[size_t(k) - 1], want, 1e-8);
    }
}

TEST(Power, FindsDominantEigenvalueOfDiagonal)
{
    CooMatrix coo(4, 4);
    coo.add(0, 0, 1.0);
    coo.add(1, 1, -2.0);
    coo.add(2, 2, 5.0); // dominant
    coo.add(3, 3, 3.0);
    PowerResult res = powerIteration(CsrMatrix::fromCoo(coo));
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.eigenvalue, 5.0, 1e-7);
    EXPECT_NEAR(std::abs(res.eigenvector[2]), 1.0, 1e-5);
}

TEST(Power, MatchesLanczosMaxOnSpdMatrix)
{
    Rng rng(1);
    CsrMatrix a = gen::banded(60, 4, 0.8, rng);
    PowerResult p = powerIteration(a);
    LanczosResult l = lanczos(a);
    EXPECT_TRUE(p.converged);
    EXPECT_NEAR(p.eigenvalue, l.lambdaMax,
                1e-5 * std::abs(l.lambdaMax));
}

TEST(Lanczos, LaplacianSpectrumEndpoints)
{
    // 1D chain Laplacian-like tridiagonal matrix as CSR.
    CsrMatrix a = gen::tridiagonal(40); // (2, -1)
    LanczosResult res = lanczos(a);
    Value lamMax = 2.0 - 2.0 * std::cos(std::numbers::pi * 40 / 41.0);
    Value lamMin = 2.0 - 2.0 * std::cos(std::numbers::pi / 41.0);
    EXPECT_NEAR(res.lambdaMax, lamMax, 1e-6);
    EXPECT_NEAR(res.lambdaMin, lamMin, 1e-6);
}

TEST(Lanczos, ConditionNumberOfIdentityIsOne)
{
    CooMatrix coo(10, 10);
    for (Index i = 0; i < 10; ++i)
        coo.add(i, i, 1.0);
    LanczosResult res = lanczos(CsrMatrix::fromCoo(coo));
    EXPECT_NEAR(res.conditionNumber, 1.0, 1e-9);
}

TEST(Lanczos, SpdMatricesHavePositiveSpectrum)
{
    Rng rng(2);
    CsrMatrix a = gen::randomSpd(50, 4, rng);
    LanczosResult res = lanczos(a);
    EXPECT_GT(res.lambdaMin, 0.0);
    EXPECT_GT(res.lambdaMax, res.lambdaMin);
    EXPECT_GT(res.conditionNumber, 1.0);
}

TEST(Eigen, RunsOnAcceleratedSpmv)
{
    Rng rng(3);
    CsrMatrix a = gen::banded(64, 5, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    auto fn = [&acc](const DenseVector &x) { return acc.spmv(x); };

    LanczosResult onAccel = lanczosWith(fn, a.rows());
    LanczosResult onHost = lanczos(a);
    EXPECT_NEAR(onAccel.lambdaMax, onHost.lambdaMax,
                1e-8 * std::abs(onHost.lambdaMax));
    EXPECT_NEAR(onAccel.lambdaMin, onHost.lambdaMin,
                1e-6 * std::abs(onHost.lambdaMax));
    EXPECT_GT(acc.report().cycles, 0u);
}

TEST(EigenDeath, RejectsMismatchedTridiagonal)
{
    EXPECT_DEATH(tridiagonalEigenvalues({1.0, 2.0}, {}), "mismatch");
}

} // namespace
} // namespace alr
