/**
 * @file
 * Stationary-smoother tests: Jacobi/SOR correctness, convergence, and
 * the classical relationships between them and Gauss-Seidel.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "kernels/blas1.hh"
#include "kernels/eigen.hh"
#include "kernels/multigrid.hh"
#include "kernels/smoothers.hh"
#include "kernels/spmv.hh"
#include "kernels/symgs.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

Value
residualNorm(const CsrMatrix &a, const DenseVector &b,
             const DenseVector &x)
{
    return norm2(residual(a, b, x));
}

TEST(Jacobi, ExactOnDiagonalSystem)
{
    CooMatrix coo(3, 3);
    coo.add(0, 0, 2.0);
    coo.add(1, 1, 4.0);
    coo.add(2, 2, 8.0);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    DenseVector b = {2.0, 8.0, 32.0};
    DenseVector x(3, 0.0);
    jacobiSweep(a, b, x);
    EXPECT_DOUBLE_EQ(x[0], 1.0);
    EXPECT_DOUBLE_EQ(x[1], 2.0);
    EXPECT_DOUBLE_EQ(x[2], 4.0);
}

TEST(Jacobi, ConvergesOnDiagonallyDominantSystem)
{
    Rng rng(1);
    CsrMatrix a = gen::banded(60, 3, 0.7, rng);
    DenseVector b(60, 1.0);
    DenseVector x(60, 0.0);
    Value prev = residualNorm(a, b, x);
    for (int it = 0; it < 60; ++it)
        jacobiSweep(a, b, x);
    EXPECT_LT(residualNorm(a, b, x), 1e-6 * prev);
}

TEST(Jacobi, WeightedConvergesWhereUnitOscillates)
{
    // Weighted Jacobi damps high-frequency error on the Poisson
    // operator; w = 2/3 must reduce the residual monotonically.
    CsrMatrix a = gen::stencil2d(12, 12, 5);
    DenseVector b(144, 1.0);
    DenseVector x(144, 0.0);
    Value prev = 1e300;
    for (int it = 0; it < 30; ++it) {
        jacobiSweep(a, b, x, 2.0 / 3.0);
        Value res = residualNorm(a, b, x);
        EXPECT_LE(res, prev * (1.0 + 1e-12));
        prev = res;
    }
}

TEST(Sor, UnitRelaxationEqualsGaussSeidel)
{
    Rng rng(2);
    CsrMatrix a = gen::banded(40, 4, 0.8, rng);
    DenseVector b(40, 0.5);
    DenseVector x1(40, 0.1), x2(40, 0.1);
    sorSweep(a, b, x1, 1.0);
    gaussSeidelSweep(a, b, x2, GsSweep::Forward);
    for (Index i = 0; i < 40; ++i)
        EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

TEST(Sor, OverRelaxationAcceleratesPoisson)
{
    // On the 2D Poisson operator, SOR with omega ~ 1.5 converges in
    // fewer sweeps than Gauss-Seidel.
    CsrMatrix a = gen::stencil2d(16, 16, 5);
    DenseVector b(256, 1.0);

    auto sweepsToTol = [&](Value omega_r) {
        DenseVector x(256, 0.0);
        int sweeps = 0;
        while (residualNorm(a, b, x) > 1e-8 && sweeps < 2000) {
            sorSweep(a, b, x, omega_r);
            ++sweeps;
        }
        return sweeps;
    };
    int gs = sweepsToTol(1.0);
    int sor = sweepsToTol(1.5);
    EXPECT_LT(sor, gs);
}

TEST(Sor, GaussSeidelBeatsJacobiInSweeps)
{
    Rng rng(3);
    CsrMatrix a = gen::banded(80, 3, 0.8, rng);
    DenseVector b(80, 1.0);

    DenseVector xj(80, 0.0), xg(80, 0.0);
    for (int it = 0; it < 10; ++it) {
        jacobiSweep(a, b, xj);
        gaussSeidelSweep(a, b, xg, GsSweep::Forward);
    }
    EXPECT_LT(residualNorm(a, b, xg), residualNorm(a, b, xj));
}

TEST(Residual, ZeroAtExactSolution)
{
    Rng rng(4);
    CsrMatrix a = gen::banded(30, 2, 0.9, rng);
    DenseVector x(30, 0.7);
    DenseVector b = spmv(a, x);
    EXPECT_LT(norm2(residual(a, b, x)), 1e-12);
}

TEST(SorDeath, RejectsOutOfRangeRelaxation)
{
    CsrMatrix a = gen::tridiagonal(4);
    DenseVector b(4, 1.0), x(4, 0.0);
    EXPECT_DEATH(sorSweep(a, b, x, 2.5), "omega");
}

TEST(Chebyshev, ReducesResidualOnPoisson)
{
    CsrMatrix a = gen::stencil2d(16, 16, 5);
    LanczosResult spec = lanczos(a);
    DenseVector b(256, 1.0);
    DenseVector x(256, 0.0);
    Value before = residualNorm(a, b, x);
    // Full-spectrum interval: the convergence factor per sweep is
    // ~2((sqrt(k)-1)/(sqrt(k)+1))^d; degree 20 comfortably beats 5x.
    chebyshevSmooth(a, b, x, spec.lambdaMin, spec.lambdaMax, 20);
    EXPECT_LT(residualNorm(a, b, x), 0.2 * before);
}

TEST(Chebyshev, HigherDegreeSmoothsMore)
{
    CsrMatrix a = gen::stencil2d(12, 12, 5);
    LanczosResult spec = lanczos(a);
    DenseVector b(144, 1.0);

    auto residualAfter = [&](int degree) {
        DenseVector x(144, 0.0);
        chebyshevSmooth(a, b, x, spec.lambdaMin, spec.lambdaMax,
                        degree);
        return residualNorm(a, b, x);
    };
    EXPECT_LT(residualAfter(8), residualAfter(2));
    EXPECT_LT(residualAfter(16), residualAfter(8));
}

TEST(Chebyshev, WorksAsMultigridSmoother)
{
    // A Chebyshev-smoothed V-cycle must still beat plain smoothing.
    GeometricMultigrid mg(16, 16, 1, 5, 2, MgTransfer::FullWeighting);
    std::vector<LanczosResult> spec;
    for (int l = 0; l < mg.numLevels(); ++l)
        spec.push_back(lanczos(mg.level(l).a));

    MgSmoother cheb = [&](int l, const MgLevel &lvl, const DenseVector &b,
                          DenseVector &x) {
        chebyshevSmooth(lvl.a, b, x, spec[size_t(l)].lambdaMax / 10.0,
                        spec[size_t(l)].lambdaMax, 3);
    };
    const CsrMatrix &a = mg.fineMatrix();
    DenseVector b(a.rows(), 1.0);
    DenseVector z = mg.vcycle(b, cheb);
    DenseVector zj(a.rows(), 0.0);
    jacobiSweep(a, b, zj, 2.0 / 3.0);
    jacobiSweep(a, b, zj, 2.0 / 3.0);
    EXPECT_LT(norm2(residual(a, b, z)), norm2(residual(a, b, zj)));
}

TEST(ChebyshevDeath, RejectsBadInterval)
{
    CsrMatrix a = gen::tridiagonal(4);
    DenseVector b(4, 1.0), x(4, 0.0);
    EXPECT_DEATH(chebyshevSmooth(a, b, x, 3.0, 1.0, 4), "interval");
}

} // namespace
} // namespace alr
