/**
 * @file
 * Structural-property tests for the synthetic matrix/graph generators.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "kernels/graph.hh"
#include "sparse/generators.hh"
#include "sparse/pattern_stats.hh"

namespace alr {
namespace {

TEST(Stencil3d, SevenPointStructure)
{
    CsrMatrix a = gen::stencil3d(4, 4, 4, 7);
    EXPECT_EQ(a.rows(), 64u);
    EXPECT_TRUE(a.isSymmetric(0.0));
    // Interior point has exactly 7 entries.
    Index interior = (1 * 4 + 1) * 4 + 1;
    EXPECT_EQ(a.rowNnz(interior), 7u);
    // Diagonal dominates.
    EXPECT_DOUBLE_EQ(a.at(interior, interior), 6.0);
}

TEST(Stencil3d, TwentySevenPointStructure)
{
    CsrMatrix a = gen::stencil3d(5, 5, 5, 27);
    Index interior = (2 * 5 + 2) * 5 + 2;
    EXPECT_EQ(a.rowNnz(interior), 27u);
    EXPECT_TRUE(a.isSymmetric(0.0));
}

TEST(Stencil2d, FiveAndNinePoint)
{
    CsrMatrix a5 = gen::stencil2d(6, 6, 5);
    CsrMatrix a9 = gen::stencil2d(6, 6, 9);
    Index interior = 2 * 6 + 3;
    EXPECT_EQ(a5.rowNnz(interior), 5u);
    EXPECT_EQ(a9.rowNnz(interior), 9u);
    EXPECT_GT(a9.nnz(), a5.nnz());
}

TEST(Banded, RespectsBandAndSpd)
{
    Rng rng(1);
    CsrMatrix a = gen::banded(100, 5, 0.8, rng);
    EXPECT_TRUE(a.isSymmetric(1e-12));
    PatternStats s = analyzePattern(a, 8);
    EXPECT_LE(s.bandwidth, 5u);
    for (Index r = 0; r < a.rows(); ++r)
        EXPECT_GT(a.at(r, r), 0.0);
}

TEST(BlockStructured, ControlsBlockCountAndFill)
{
    Rng rng(2);
    CsrMatrix a = gen::blockStructured(128, 8, 3, 0.9, rng);
    EXPECT_EQ(a.rows(), 128u);
    EXPECT_TRUE(a.isSymmetric(1e-12));
    PatternStats s = analyzePattern(a, 8);
    // Dense blocks: high in-block fill.
    EXPECT_GT(s.blockDensity, 0.0);
}

TEST(RandomSpd, DiagonalNeverZero)
{
    Rng rng(3);
    CsrMatrix a = gen::randomSpd(60, 5, rng);
    for (Index r = 0; r < a.rows(); ++r)
        EXPECT_NE(a.at(r, r), 0.0);
    EXPECT_TRUE(a.isSymmetric(1e-12));
}

TEST(Rmat, SizeAndSkew)
{
    Rng rng(4);
    CsrMatrix g = gen::rmat(10, 8, rng);
    EXPECT_EQ(g.rows(), 1024u);
    // Kronecker graphs are skewed: max degree far above the mean.
    PatternStats s = analyzePattern(g, 8);
    EXPECT_GT(double(s.maxRowNnz), 4.0 * s.meanRowNnz);
    // No self loops.
    for (Index r = 0; r < g.rows(); ++r)
        EXPECT_DOUBLE_EQ(g.at(r, r), 0.0);
}

TEST(RoadGrid, DegreeAndConnectivity)
{
    Rng rng(5);
    CsrMatrix g = gen::roadGrid(12, 10, 0.0, rng);
    EXPECT_EQ(g.rows(), 120u);
    PatternStats s = analyzePattern(g, 8);
    // 4-neighbour grid: mean degree slightly under 4.
    EXPECT_GT(s.meanRowNnz, 3.0);
    EXPECT_LE(s.maxRowNnz, 4u);
    // Connected: BFS reaches everything.
    DenseVector dist = bfsReference(g, 0);
    for (Value d : dist)
        EXPECT_TRUE(std::isfinite(d));
}

TEST(PowerLaw, HeavyTail)
{
    Rng rng(6);
    CsrMatrix g = gen::powerLawGraph(2000, 8, 1.0, rng);
    std::vector<Index> deg = outDegrees(g);
    Index maxDeg = 0;
    double sum = 0.0;
    for (Index d : deg) {
        maxDeg = std::max(maxDeg, d);
        sum += d;
    }
    double mean = sum / deg.size();
    EXPECT_GT(double(maxDeg), 10.0 * mean);
}

TEST(PowerLaw, WeightsArePositive)
{
    Rng rng(7);
    CsrMatrix g = gen::powerLawGraph(500, 6, 0.9, rng);
    for (Value v : g.vals())
        EXPECT_GT(v, 0.0);
}

TEST(Tridiagonal, ExactStructure)
{
    CsrMatrix a = gen::tridiagonal(10);
    EXPECT_EQ(a.nnz(), 28u);
    EXPECT_DOUBLE_EQ(a.at(4, 4), 2.0);
    EXPECT_DOUBLE_EQ(a.at(4, 5), -1.0);
    EXPECT_DOUBLE_EQ(a.at(4, 3), -1.0);
    EXPECT_DOUBLE_EQ(a.at(4, 6), 0.0);
}

TEST(Generators, Deterministic)
{
    Rng r1(99), r2(99);
    CsrMatrix a = gen::randomSpd(40, 4, r1);
    CsrMatrix b = gen::randomSpd(40, 4, r2);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace alr
