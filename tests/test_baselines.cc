/**
 * @file
 * Baseline-model tests: coloring/level-schedule validity, monotonic
 * timing models, and the qualitative orderings the paper's evaluation
 * depends on.
 */

#include <gtest/gtest.h>

#include "baselines/coloring.hh"
#include "sparse/coo.hh"
#include "baselines/cpu_model.hh"
#include "baselines/gpu_model.hh"
#include "baselines/graphr.hh"
#include "baselines/memristive.hh"
#include "baselines/outerspace.hh"
#include "baselines/platforms.hh"
#include "common/random.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

TEST(Coloring, ProducesValidIndependentSets)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSpd(120, 6, rng);
    ColoringResult c = greedyColoring(a);
    ASSERT_EQ(c.color.size(), a.rows());
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k) {
            Index col = a.colIdx()[k];
            if (col != r) {
                EXPECT_NE(c.color[r], c.color[col])
                    << "conflicting rows " << r << "," << col;
            }
        }
    }
    Index total = 0;
    for (Index s : c.colorSizes)
        total += s;
    EXPECT_EQ(total, a.rows());
}

TEST(Coloring, TridiagonalNeedsTwoColors)
{
    CsrMatrix a = gen::tridiagonal(50);
    ColoringResult c = greedyColoring(a);
    EXPECT_EQ(c.numColors, 2u);
}

TEST(LevelSchedule, RespectsDependencies)
{
    Rng rng(2);
    CsrMatrix a = gen::banded(80, 4, 0.7, rng);
    LevelSchedule ls = levelSchedule(a);
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k) {
            Index c = a.colIdx()[k];
            if (c < r) {
                EXPECT_GT(ls.level[r], ls.level[c]);
            }
        }
    }
}

TEST(LevelSchedule, DiagonalMatrixIsOneLevel)
{
    CooMatrix coo(10, 10);
    for (Index i = 0; i < 10; ++i)
        coo.add(i, i, 1.0);
    LevelSchedule ls = levelSchedule(CsrMatrix::fromCoo(coo));
    EXPECT_EQ(ls.numLevels, 1u);
}

TEST(LevelSchedule, ChainIsFullySequential)
{
    CsrMatrix a = gen::tridiagonal(30);
    LevelSchedule ls = levelSchedule(a);
    EXPECT_EQ(ls.numLevels, 30u);
}

TEST(SequentialFraction, BoundsAndMonotonicity)
{
    Rng rng(3);
    CsrMatrix a = gen::randomSpd(100, 5, rng);
    ColoringResult c = greedyColoring(a);
    // Machines filled by a single row see no sequential ops.
    EXPECT_DOUBLE_EQ(coloredSequentialFraction(a, c, 1), 0.0);
    // Wider machines leave more of each color underfilled.
    double prev = 0.0;
    for (Index width : {8u, 64u, 512u, 4096u}) {
        double frac = coloredSequentialFraction(a, c, width);
        EXPECT_GE(frac, prev);
        EXPECT_LE(frac, 1.0);
        prev = frac;
    }
    EXPECT_GT(prev, 0.5); // tiny colors cannot fill a 4096-wide machine
}

TEST(GpuModel, SpmvTimeGrowsWithMatrix)
{
    Rng rng(4);
    GpuModel gpu;
    CsrMatrix small = gen::randomSpd(256, 6, rng);
    CsrMatrix large = gen::randomSpd(2048, 6, rng);
    EXPECT_LT(gpu.spmvSeconds(small), gpu.spmvSeconds(large));
}

TEST(GpuModel, SymGsDominatedByLaunchesOnIrregularMatrices)
{
    Rng rng(5);
    GpuModel gpu;
    // Irregular conflicts -> many small colors -> launch-bound SymGS.
    CsrMatrix irregular = gen::randomSpd(1024, 10, rng);
    double symgs = gpu.symgsSweepSeconds(irregular);
    double spmv = gpu.spmvSeconds(irregular);
    EXPECT_GT(symgs, spmv);
}

TEST(GpuModel, SequentialFractionHigherForConflictHeavyMatrices)
{
    Rng rng(6);
    GpuModel gpu;
    CsrMatrix stencil = gen::stencil2d(32, 32, 5);
    CsrMatrix irregular = gen::randomSpd(1024, 10, rng);
    EXPECT_LT(gpu.sequentialFraction(stencil),
              gpu.sequentialFraction(irregular));
}

TEST(GpuModel, PcgIterationIncludesAllKernels)
{
    Rng rng(7);
    CsrMatrix a = gen::banded(512, 8, 0.7, rng);
    GpuModel gpu;
    EXPECT_GT(gpu.pcgIterationSeconds(a),
              gpu.symgsSweepSeconds(a) + gpu.spmvSeconds(a) - 1e-12);
}

TEST(CpuModel, SlowerThanGpuOnStreamingKernels)
{
    Rng rng(8);
    CsrMatrix a = gen::randomSpd(4096, 8, rng);
    CpuModel cpu;
    GpuModel gpu;
    EXPECT_GT(cpu.spmvSeconds(a), gpu.spmvSeconds(a));
}

TEST(CpuModel, TraversalIsWorkEfficient)
{
    // BFS across the whole traversal touches each edge O(1) times:
    // 10x the rounds must cost far less than 10x the time (only the
    // per-round index scan grows).
    Rng rng(9);
    CsrMatrix g = gen::rmat(10, 8, rng);
    CpuModel cpu;
    EXPECT_LT(cpu.bfsSeconds(g, 10), 2.0 * cpu.bfsSeconds(g, 1));
    EXPECT_GT(cpu.bfsSeconds(g, 10), cpu.bfsSeconds(g, 1));
    // PageRank rounds stay dense and linear.
    EXPECT_NEAR(cpu.pagerankSeconds(g, 10),
                10.0 * cpu.pagerankSeconds(g, 1), 1e-12);
}

TEST(OuterSpace, CacheBoundOnScatterHeavyMatrices)
{
    Rng rng(10);
    CsrMatrix a = gen::randomSpd(4096, 12, rng);
    OuterSpaceModel os;
    double frac = os.cacheTimeFraction(a);
    EXPECT_GT(frac, 0.3);
    EXPECT_LE(frac, 1.0);
    EXPECT_GT(os.spmvSeconds(a), 0.0);
}

TEST(GraphR, BlockCountBetweenNnzBoundAndTotal)
{
    Rng rng(11);
    CsrMatrix g = gen::rmat(9, 6, rng);
    GraphRModel gr;
    double blocks = gr.countBlocks(g);
    EXPECT_GE(blocks, double(g.nnz()) / 16.0);
    EXPECT_LE(blocks, double(g.nnz()));
}

TEST(GraphR, TraversalWorkEfficientButPrDense)
{
    Rng rng(12);
    CsrMatrix g = gen::roadGrid(30, 30, 0.05, rng);
    GraphRModel gr;
    EXPECT_GT(gr.roundSeconds(g), 0.0);
    // BFS grows only by the per-round controller scan...
    EXPECT_LT(gr.bfsSeconds(g, 70) - gr.bfsSeconds(g, 7), 7e-4);
    // ...while PageRank rounds stay dense and linear.
    EXPECT_NEAR(gr.pagerankSeconds(g, 7), 7.0 * gr.roundSeconds(g),
                1e-12);
}

TEST(Memristive, LargeBlocksWasteBandwidthOnSparseMatrices)
{
    Rng rng(13);
    // Sparse banded matrix: 8-wide blocks stay much denser than 64+.
    CsrMatrix a = gen::banded(4096, 6, 0.6, rng);
    MemristiveModel mem;
    EXPECT_LT(mem.bandwidthUtilization(a), 0.5);
    EXPECT_GT(mem.passSeconds(a), 0.0);
}

TEST(Memristive, ChoosesSmallestBlocksForScatteredMatrices)
{
    Rng rng(14);
    CsrMatrix a = gen::randomSpd(2048, 4, rng);
    MemristiveModel mem;
    EXPECT_EQ(mem.chooseBlockSize(a), 64u);
}

TEST(Platforms, HpcgFractionIsTiny)
{
    for (const Platform &p : platformRoster()) {
        double frac = hpcgPeakFraction(p);
        EXPECT_GT(frac, 0.0) << p.name;
        EXPECT_LT(frac, 0.2) << p.name; // Fig 6: single-digit percents
    }
}

TEST(Platforms, RosterHasCpusAndGpus)
{
    bool cpu = false, gpu = false;
    for (const Platform &p : platformRoster()) {
        cpu |= !p.isGpu;
        gpu |= p.isGpu;
    }
    EXPECT_TRUE(cpu);
    EXPECT_TRUE(gpu);
}

} // namespace
} // namespace alr
