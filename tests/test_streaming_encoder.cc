/**
 * @file
 * Streaming-encoder tests: single-pass bounded-memory encoding must
 * reproduce the batch encoder exactly for both layouts, the BCSR fast
 * path must agree, and the working set must stay bounded (the §4
 * "conversion while data streams" claim).
 */

#include <gtest/gtest.h>

#include "alrescha/streaming_encoder.hh"
#include "common/random.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

void
expectSameEncoding(const LocallyDenseMatrix &a,
                   const LocallyDenseMatrix &b)
{
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.omega(), b.omega());
    EXPECT_EQ(a.layout(), b.layout());
    EXPECT_EQ(a.stream(), b.stream());
    EXPECT_EQ(a.diagonal(), b.diagonal());
    ASSERT_EQ(a.blocks().size(), b.blocks().size());
    for (size_t i = 0; i < a.blocks().size(); ++i) {
        EXPECT_EQ(a.blocks()[i].blockRow, b.blocks()[i].blockRow);
        EXPECT_EQ(a.blocks()[i].blockCol, b.blocks()[i].blockCol);
        EXPECT_EQ(a.blocks()[i].offset, b.blocks()[i].offset);
        EXPECT_EQ(a.blocks()[i].size, b.blocks()[i].size);
    }
    EXPECT_EQ(a.metadataBytes(), b.metadataBytes());
}

class StreamingSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(StreamingSweep, MatchesBatchEncoderBothLayouts)
{
    Rng rng(GetParam());
    CsrMatrix a = gen::randomSpd(45 + Index(GetParam() % 20), 5, rng);
    for (Index omega : {3u, 8u}) {
        expectSameEncoding(
            StreamingEncoder::encodeCsr(a, omega, LdLayout::Plain),
            LocallyDenseMatrix::encode(a, omega, LdLayout::Plain));
        expectSameEncoding(
            StreamingEncoder::encodeCsr(a, omega, LdLayout::SymGs),
            LocallyDenseMatrix::encode(a, omega, LdLayout::SymGs));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingSweep,
                         ::testing::Range<uint64_t>(50, 58));

TEST(StreamingEncoder, BcsrFastPathAgrees)
{
    Rng rng(1);
    CsrMatrix a = gen::banded(96, 7, 0.8, rng);
    BcsrMatrix bcsr = BcsrMatrix::fromCsr(a, 8);
    expectSameEncoding(
        StreamingEncoder::encodeBcsr(bcsr, LdLayout::SymGs),
        LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs));
    expectSameEncoding(
        StreamingEncoder::encodeBcsr(bcsr, LdLayout::Plain),
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain));
}

TEST(StreamingEncoder, WorkingSetBoundedByBandwidth)
{
    // A banded matrix keeps at most ceil(band/omega)*2 + 1 open blocks
    // regardless of matrix size: the claim that conversion streams.
    Rng rng(2);
    for (Index n : {256u, 1024u, 4096u}) {
        CsrMatrix a = gen::banded(n, 8, 0.9, rng);
        StreamingEncoder enc(n, n, 8, LdLayout::SymGs);
        for (Index r = 0; r < n; ++r) {
            for (Index k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k)
                enc.add(r, a.colIdx()[k], a.vals()[k]);
        }
        enc.finish();
        EXPECT_LE(enc.peakOpenBlocks(), 4u) << "n = " << n;
    }
}

TEST(StreamingEncoder, DecodedMatrixRoundTrips)
{
    Rng rng(3);
    CsrMatrix a = gen::blockStructured(64, 8, 3, 0.6, rng);
    auto ld = StreamingEncoder::encodeCsr(a, 8, LdLayout::SymGs);
    EXPECT_EQ(ld.decode(), a);
}

TEST(StreamingEncoderDeath, RejectsOutOfOrderBlockRows)
{
    StreamingEncoder enc(32, 32, 8, LdLayout::Plain);
    enc.add(20, 3, 1.0); // opens block row 2, closing 0 and 1
    EXPECT_DEATH(enc.add(2, 5, 1.0), "order");
}

TEST(StreamingEncoderDeath, DoubleFinishPanics)
{
    StreamingEncoder enc(8, 8, 4, LdLayout::Plain);
    enc.add(0, 0, 1.0);
    enc.finish();
    EXPECT_DEATH(enc.finish(), "finished");
}

TEST(StreamingEncoder, EmptyMatrixProducesNoBlocks)
{
    StreamingEncoder enc(16, 16, 8, LdLayout::Plain);
    auto ld = enc.finish();
    EXPECT_TRUE(ld.blocks().empty());
    EXPECT_EQ(ld.scalarNnz(), 0u);
}

} // namespace
} // namespace alr
