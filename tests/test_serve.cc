/**
 * @file
 * Serving-mode properties (ISSUE 8): replayable trace generation, the
 * deterministic batching plan, and the equivalence contract -- batched
 * serving stays bit-identical per request to the unbatched engine, the
 * unbatched stream matches a plain serial loop, and every modeled
 * number is invariant under the worker thread count.  Plus the bounded
 * admission queue and concurrent schedule-cache lookups (the
 * ServeConcurrency suite runs under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include "alrescha/serve.hh"
#include "common/random.hh"
#include "common/request_queue.hh"
#include "common/timeline.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

std::string
statDump(Engine &e)
{
    std::ostringstream os;
    e.statGroup().dump(os);
    return os.str();
}

/** Three small PDE matrices with distinct structure. */
std::vector<CsrMatrix>
testMatrices()
{
    Rng rng(3);
    return {gen::stencil2d(8, 8), gen::banded(49, 4, 0.8, rng),
            gen::randomSpd(37, 4, rng)};
}

ServeFleet
makeFleet(const AccelParams &params = {})
{
    ServeFleet fleet(params);
    std::vector<CsrMatrix> ms = testMatrices();
    for (size_t i = 0; i < ms.size(); ++i)
        fleet.add("m" + std::to_string(i), ms[i], true);
    fleet.warmSchedules();
    return fleet;
}

TraceParams
smallTrace(uint32_t requests = 40)
{
    TraceParams tp;
    tp.requests = requests;
    tp.burstiness = 0.5;
    tp.pcgWeight = 0.05;
    return tp;
}

/** Drain the trace the trivial way: one accelerator per matrix, the
 *  requests run serially in arrival order.  The ground truth the
 *  serving loop must reproduce bit for bit. */
struct SerialReference
{
    std::vector<std::unique_ptr<Accelerator>> accs;
    std::vector<DenseVector> results;

    SerialReference(const std::vector<CsrMatrix> &ms,
                    const std::vector<ServeRequest> &trace,
                    const ServeConfig &cfg, const AccelParams &params = {})
    {
        for (const CsrMatrix &m : ms) {
            accs.push_back(std::make_unique<Accelerator>(params));
            accs.back()->loadPde(m);
        }
        results.resize(trace.size());
        for (const ServeRequest &r : trace) {
            Accelerator &acc = *accs[r.matrix];
            Index n = acc.matrix().rows();
            DenseVector rhs = serveRequestRhs(cfg.rhsSeed, r.id, n);
            if (r.op == ServeOp::Spmv) {
                results[r.id] = acc.spmv(rhs);
            } else if (r.op == ServeOp::Symgs) {
                DenseVector x(n, 0.0);
                acc.symgsSweep(rhs, x, GsSweep::Symmetric);
                results[r.id] = std::move(x);
            } else {
                PcgOptions opts;
                opts.maxIterations = cfg.pcgIterations;
                results[r.id] = acc.pcg(rhs, opts).x;
            }
        }
    }
};

} // namespace

TEST(ServeTrace, DeterministicAndSeedSensitive)
{
    std::vector<uint8_t> mask{1, 1, 1, 1};
    TraceParams tp = smallTrace(200);
    std::vector<ServeRequest> t1 = generateTrace(tp, mask);
    std::vector<ServeRequest> t2 = generateTrace(tp, mask);
    ASSERT_EQ(t1.size(), t2.size());
    for (size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].id, uint32_t(i));
        EXPECT_EQ(t1[i].matrix, t2[i].matrix);
        EXPECT_EQ(t1[i].op, t2[i].op);
        EXPECT_LT(t1[i].matrix, mask.size());
    }

    tp.seed += 1;
    std::vector<ServeRequest> t3 = generateTrace(tp, mask);
    bool differs = false;
    for (size_t i = 0; i < t1.size(); ++i)
        differs |= t1[i].matrix != t3[i].matrix || t1[i].op != t3[i].op;
    EXPECT_TRUE(differs);
}

TEST(ServeTrace, ZipfSkewsTowardTheHeadAndMaskForcesSpmv)
{
    std::vector<uint8_t> mask{1, 0, 1, 0};
    TraceParams tp = smallTrace(2000);
    tp.zipfS = 1.2;
    tp.burstiness = 0.0;
    std::vector<ServeRequest> trace = generateTrace(tp, mask);

    std::vector<uint32_t> counts(mask.size(), 0);
    for (const ServeRequest &r : trace) {
        ++counts[r.matrix];
        if (!mask[r.matrix])
            EXPECT_EQ(r.op, ServeOp::Spmv);
    }
    // Matrix 0 is the Zipf head: strictly most popular.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[0], counts[2]);
    EXPECT_GT(counts[0], counts[3]);
}

TEST(ServePlan, WindowOnePreservesArrivalOrder)
{
    std::vector<uint8_t> mask{1, 1, 1};
    std::vector<ServeRequest> trace = generateTrace(smallTrace(60), mask);
    std::vector<ServeWorkItem> plan = buildServePlan(trace, 1);
    ASSERT_EQ(plan.size(), trace.size());
    std::vector<uint64_t> seq(mask.size(), 0);
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].requestIds.size(), 1u);
        EXPECT_EQ(plan[i].requestIds[0], trace[i].id);
        EXPECT_EQ(plan[i].matrix, trace[i].matrix);
        EXPECT_EQ(plan[i].op, trace[i].op);
        EXPECT_EQ(plan[i].seq, seq[plan[i].matrix]++);
    }
}

TEST(ServePlan, CoalescesOnlySameMatrixSpmvWithinWindow)
{
    std::vector<uint8_t> mask{1, 1, 1};
    std::vector<ServeRequest> trace = generateTrace(smallTrace(200), mask);
    const uint32_t window = 6;
    std::vector<ServeWorkItem> plan = buildServePlan(trace, window);

    // Every request appears exactly once across the plan.
    std::vector<int> seen(trace.size(), 0);
    for (const ServeWorkItem &item : plan) {
        EXPECT_LE(item.requestIds.size(), size_t(window));
        if (item.op != ServeOp::Spmv)
            EXPECT_EQ(item.requestIds.size(), 1u);
        uint32_t anchor = item.requestIds.front();
        for (uint32_t id : item.requestIds) {
            ++seen[id];
            EXPECT_EQ(trace[id].matrix, item.matrix);
            if (item.requestIds.size() > 1) {
                EXPECT_EQ(trace[id].op, ServeOp::Spmv);
                // Window bound: absorbed ids arrive within window-1 of
                // the anchor.
                EXPECT_LT(id - anchor, window);
            }
        }
    }
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "request " << i;

    // The plan is a pure function of (trace, window).
    std::vector<ServeWorkItem> again = buildServePlan(trace, window);
    ASSERT_EQ(plan.size(), again.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].requestIds, again[i].requestIds);
        EXPECT_EQ(plan[i].seq, again[i].seq);
    }
    // Batching actually happened on this bursty trace.
    EXPECT_LT(plan.size(), trace.size());
}

TEST(ServeEquivalence, UnbatchedServeMatchesSerialLoop)
{
    std::vector<CsrMatrix> ms = testMatrices();
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(), {1, 1, 1});
    ServeConfig cfg;
    cfg.batchWindow = 1;
    cfg.keepResults = true;
    cfg.pcgIterations = 4;

    ServeFleet fleet = makeFleet();
    ServeResult res = serve(fleet, trace, cfg);
    SerialReference ref(ms, trace, cfg);

    ASSERT_EQ(res.completed, trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(res.results[i], ref.results[i]) << "request " << i;
    // Modeled counters match the serial loop engine for engine: the
    // serving layer added queuing, threads, and locks but changed no
    // modeled number.
    for (size_t m = 0; m < ms.size(); ++m) {
        EXPECT_EQ(fleet.at(m).engine().totalCycles(),
                  ref.accs[m]->engine().totalCycles());
        EXPECT_EQ(statDump(fleet.at(m).engine()),
                  statDump(ref.accs[m]->engine()));
    }
}

TEST(ServeEquivalence, BatchedResultsBitIdenticalPerRequest)
{
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(60), {1, 1, 1});
    ServeConfig off;
    off.batchWindow = 1;
    off.keepResults = true;
    off.pcgIterations = 4;
    ServeConfig on = off;
    on.batchWindow = 8;

    ServeFleet f1 = makeFleet();
    ServeResult r1 = serve(f1, trace, off);
    ServeFleet f2 = makeFleet();
    ServeResult r2 = serve(f2, trace, on);

    EXPECT_LT(r2.workItems, r1.workItems); // coalescing happened
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(r1.results[i], r2.results[i]) << "request " << i;
    // Batching reduces the fleet's modeled cycles (the matrix streams
    // once per batch) -- that is the serving win, measured, not free.
    EXPECT_LT(f2.totalCycles(), f1.totalCycles());
}

TEST(ServeEquivalence, ThreadCountInvariant)
{
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(60), {1, 1, 1});
    ServeConfig cfg;
    cfg.batchWindow = 4;
    cfg.keepResults = true;
    cfg.pcgIterations = 4;

    ServeConfig cfg4 = cfg;
    cfg4.threads = 4;
    cfg4.queueDepth = 3; // exercise producer back-pressure too

    ServeFleet f1 = makeFleet();
    ServeResult r1 = serve(f1, trace, cfg);
    ServeFleet f4 = makeFleet();
    ServeResult r4 = serve(f4, trace, cfg4);

    EXPECT_EQ(r1.completed, r4.completed);
    EXPECT_EQ(r1.workItems, r4.workItems);
    EXPECT_EQ(r1.checksums, r4.checksums);
    EXPECT_EQ(r1.modeledCycles, r4.modeledCycles);
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(r1.results[i], r4.results[i]) << "request " << i;
    for (size_t m = 0; m < f1.size(); ++m) {
        EXPECT_EQ(f1.at(m).engine().totalCycles(),
                  f4.at(m).engine().totalCycles());
        EXPECT_EQ(statDump(f1.at(m).engine()),
                  statDump(f4.at(m).engine()));
    }
}

TEST(ServeFleetTest, WarmSchedulesCompilesEverythingOnce)
{
    ServeFleet fleet = makeFleet();
    // Three PDE entries x three tables each.
    EXPECT_EQ(fleet.scheduleCompiles(), 9u);
    ServeConfig cfg;
    cfg.pcgIterations = 2;
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(30), fleet.pdeMask());
    serve(fleet, trace, cfg);
    // Serving replays the warm schedules; nothing recompiles.
    EXPECT_EQ(fleet.scheduleCompiles(), 9u);
}

TEST(ServeFleetTest, CacheRoundTripThroughDirectory)
{
    std::string dir = ::testing::TempDir() + "serve_caches";
    std::filesystem::create_directories(dir);

    ServeFleet cold = makeFleet();
    EXPECT_EQ(cold.saveScheduleCaches(dir), cold.size());

    ServeFleet warm;
    std::vector<CsrMatrix> ms = testMatrices();
    for (size_t i = 0; i < ms.size(); ++i)
        warm.add("m" + std::to_string(i), ms[i], true);
    EXPECT_EQ(warm.restoreScheduleCaches(dir), warm.size());
    warm.warmSchedules();
    EXPECT_EQ(warm.scheduleCompiles(), 0u) << "warm start compiled";

    std::filesystem::remove_all(dir);
}

TEST(ServeConcurrency, RequestQueueBoundsAndDrains)
{
    RequestQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)) << "capacity must bound admissions";
    EXPECT_EQ(q.size(), 2u);

    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.push(3));
    q.close();
    EXPECT_FALSE(q.push(4)) << "closed queue must refuse admissions";
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 3) << "pending items drain after close";
    EXPECT_FALSE(q.pop(v)) << "drained + closed pops false";
}

TEST(ServeConcurrency, ProducersAndConsumersSeeEveryItem)
{
    RequestQueue<int> q(4);
    constexpr int kItems = 2000;
    std::atomic<long> sum{0};
    std::atomic<int> count{0};

    std::vector<std::thread> consumers;
    for (int t = 0; t < 3; ++t) {
        consumers.emplace_back([&] {
            int v;
            while (q.pop(v)) {
                sum += v;
                ++count;
            }
        });
    }
    std::vector<std::thread> producers;
    for (int t = 0; t < 2; ++t) {
        producers.emplace_back([&, t] {
            for (int i = t; i < kItems; i += 2)
                ASSERT_TRUE(q.push(i));
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(count.load(), kItems);
    EXPECT_EQ(sum.load(), long(kItems) * (kItems - 1) / 2);
}

TEST(ServeConcurrency, ParallelScheduleLookupsAreSafe)
{
    // Many threads hammer prepareSchedule() on one programmed engine:
    // the cache mutex must serialize the MRU reorder (this test runs
    // under TSan in CI) and exactly one compile must happen.
    Rng rng(17);
    CsrMatrix a = gen::randomSpd(64, 5, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    auto table = ConfigTable::convert(KernelType::SpMV, ld);

    AccelParams params;
    params.omega = 8;
    Engine e(params);
    e.program(&ld, &table);

    std::vector<std::thread> threads;
    std::atomic<int> nulls{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                if (!e.prepareSchedule())
                    ++nulls;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(nulls.load(), 0);
    EXPECT_EQ(e.scheduleCompiles(), 1u);
    EXPECT_EQ(e.cachedSchedules(), 1u);
}

TEST(ServeQueueEdges, CloseWakesProducerBlockedOnFull)
{
    RequestQueue<int> q(1);
    ASSERT_TRUE(q.push(1));

    std::atomic<bool> returned{false};
    std::atomic<bool> accepted{true};
    std::thread producer([&] {
        accepted = q.push(2); // blocks: the queue is at capacity
        returned = true;
    });
    // Wait until the producer has actually hit back-pressure.
    while (q.blockedPushes() == 0 && !returned)
        std::this_thread::yield();
    EXPECT_FALSE(returned.load()) << "push must block on a full queue";

    q.close();
    producer.join();
    EXPECT_FALSE(accepted.load()) << "close must drop the blocked push";
    EXPECT_EQ(q.blockedPushes(), 1u);

    // The item admitted before close still drains.
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_FALSE(q.pop(v));
}

TEST(ServeQueueEdges, CloseWakesConsumersBlockedOnEmpty)
{
    RequestQueue<int> q(4);
    std::atomic<int> done{0};
    std::vector<std::thread> consumers;
    for (int i = 0; i < 3; ++i)
        consumers.emplace_back([&] {
            int v = 0;
            EXPECT_FALSE(q.pop(v)) << "empty + closed must pop false";
            ++done;
        });
    // Give the consumers a moment to block on the empty queue; close
    // must wake every one of them either way.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(done.load(), 3);
}

TEST(ServeQueueEdges, AdmissionCountersTrackPressure)
{
    RequestQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_FALSE(q.tryPush(4));
    EXPECT_EQ(q.rejects(), 2u) << "shed admissions must be counted";
    EXPECT_EQ(q.highWater(), 2u);
    EXPECT_EQ(q.blockedPushes(), 0u);

    int v = 0;
    EXPECT_TRUE(q.pop(v));
    q.close();
    // Push after close: refused, dropped, and never counted as a
    // blocked (back-pressured) admission.
    EXPECT_FALSE(q.push(9));
    EXPECT_FALSE(q.tryPush(9));
    EXPECT_EQ(q.rejects(), 3u);
    EXPECT_EQ(q.blockedPushes(), 0u);
    EXPECT_EQ(q.highWater(), 2u);
}

TEST(ServeObservability, TracingAndMetricsDoNotPerturbResults)
{
    TraceParams tp = smallTrace(60);
    ServeConfig cfg;
    cfg.threads = 2;
    cfg.batchWindow = 4;

    ServeFleet plain = makeFleet();
    std::vector<ServeRequest> trace = generateTrace(tp, plain.pdeMask());
    ServeResult base = serve(plain, trace, cfg);

    // Same trace, fresh fleet, full observability on: request-plane
    // tracing plus a live metrics registry.
    ServeFleet observed = makeFleet();
    metrics::Registry reg;
    ServeConfig ocfg = cfg;
    ocfg.metrics = &reg;
    timeline::reset();
    timeline::setEnabled(true);
    ServeResult obs = serve(observed, trace, ocfg);
    timeline::setEnabled(false);
    timeline::reset();

    ASSERT_EQ(base.checksums.size(), obs.checksums.size());
    for (size_t i = 0; i < base.checksums.size(); ++i) {
        EXPECT_EQ(base.checksums[i], obs.checksums[i]) << "request " << i;
        EXPECT_EQ(base.modeledCycles[i], obs.modeledCycles[i])
            << "request " << i;
    }
    EXPECT_EQ(plain.totalCycles(), observed.totalCycles());
    for (size_t i = 0; i < plain.size(); ++i)
        EXPECT_EQ(statDump(plain.at(i).engine()),
                  statDump(observed.at(i).engine()))
            << "fleet entry " << i;
}

TEST(ServeObservability, TimelineRecordsTheRequestPlane)
{
    ServeFleet fleet = makeFleet();
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(30), fleet.pdeMask());
    ServeConfig cfg;
    cfg.threads = 2;
    cfg.batchWindow = 4;

    timeline::reset();
    timeline::setEnabled(true);
    serve(fleet, trace, cfg);
    timeline::setEnabled(false);

    bool accSpan = false, serveCounter = false, workerSpan = false;
    for (const timeline::Event &e : timeline::events()) {
        if (e.pid == timeline::kPidServe) {
            if (e.kind == timeline::Event::Kind::Span &&
                e.tid >= timeline::kTidServeAccBase)
                accSpan = true;
            if (e.kind == timeline::Event::Kind::Counter &&
                e.tid == timeline::kTidServeCounters)
                serveCounter = true;
        } else if (e.pid == timeline::kPidHost &&
                   e.kind == timeline::Event::Kind::Span) {
            workerSpan = true;
        }
    }
    EXPECT_TRUE(accSpan) << "no per-accelerator request spans";
    EXPECT_TRUE(serveCounter) << "no queue/in-flight/batch counters";
    EXPECT_TRUE(workerSpan) << "no per-worker spans";

    std::ostringstream os;
    timeline::exportChromeTrace(os);
    std::string doc = os.str();
    EXPECT_NE(doc.find("serve (request plane, wall clock)"),
              std::string::npos);
    EXPECT_NE(doc.find("\"m0\""), std::string::npos)
        << "accelerator track not named after its matrix";
    timeline::reset();
}

TEST(ServeObservability, MetricsRegistryCountsMatchTheDrain)
{
    ServeFleet fleet = makeFleet();
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(50), fleet.pdeMask());
    metrics::Registry reg;
    ServeConfig cfg;
    cfg.threads = 2;
    cfg.batchWindow = 4;
    cfg.metrics = &reg;
    ServeResult res = serve(fleet, trace, cfg);
    ASSERT_EQ(res.completed, trace.size());

    double v = 0.0;
    ASSERT_TRUE(reg.lookup("serve_requests_completed", {}, &v));
    EXPECT_EQ(uint64_t(v), res.completed);
    ASSERT_TRUE(reg.lookup("serve_latency_us", {}, &v));
    EXPECT_EQ(uint64_t(v), res.completed)
        << "latency histogram must hold one sample per request";
    ASSERT_TRUE(reg.lookup("serve_queue_wait_us", {}, &v));
    EXPECT_EQ(uint64_t(v), res.completed);

    uint64_t perMatrix = 0;
    for (size_t i = 0; i < fleet.size(); ++i) {
        metrics::Labels labels = {{"matrix", fleet.nameOf(i)}};
        ASSERT_TRUE(reg.lookup("serve_latency_us", labels, &v));
        perMatrix += uint64_t(v);
        ASSERT_TRUE(reg.lookup("serve_schedule_hits", labels, &v));
        ASSERT_TRUE(reg.lookup("serve_modeled_cycles", labels, &v));
        EXPECT_EQ(uint64_t(v), fleet.at(i).engine().totalCycles());
    }
    EXPECT_EQ(perMatrix, res.completed)
        << "per-matrix label sets must partition the stream";

    // Exact per-request samples back the SLO accounting.
    ASSERT_EQ(res.latencyUs.size(), trace.size());
    ASSERT_EQ(res.queueWaitUs.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_GT(res.latencyUs[i], 0.0) << "request " << i;
        EXPECT_LE(res.queueWaitUs[i], res.latencyUs[i]) << "request " << i;
    }
    EXPECT_GE(res.queueHighWater, 1u);
}

TEST(ServeSlo, AccountingFromExactSamples)
{
    ServeFleet fleet = makeFleet();
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(50), fleet.pdeMask());
    ServeConfig cfg;
    cfg.threads = 2;
    cfg.batchWindow = 4;
    ServeResult res = serve(fleet, trace, cfg);

    SloReport generous = computeSlo(res, trace, fleet, 1e12);
    EXPECT_EQ(generous.total.requests, trace.size());
    EXPECT_EQ(generous.total.good, trace.size());
    EXPECT_EQ(generous.total.bad, 0u);
    EXPECT_DOUBLE_EQ(generous.burnRate(), 0.0);
    EXPECT_LE(generous.total.p50, generous.total.p95);
    EXPECT_LE(generous.total.p95, generous.total.p99);
    EXPECT_LE(generous.total.p99, generous.total.p999);

    SloReport strict = computeSlo(res, trace, fleet, 1e-6);
    EXPECT_EQ(strict.total.good + strict.total.bad, trace.size());
    EXPECT_EQ(strict.total.bad, trace.size())
        << "every real latency exceeds a 1 picosecond target";
    EXPECT_DOUBLE_EQ(strict.badFraction(), 1.0);
    EXPECT_NEAR(strict.burnRate(), 100.0, 1e-9);

    ASSERT_EQ(strict.perMatrix.size(), fleet.size());
    uint64_t reqs = 0, good = 0, bad = 0;
    for (const SloBucket &b : strict.perMatrix) {
        reqs += b.requests;
        good += b.good;
        bad += b.bad;
    }
    EXPECT_EQ(reqs, trace.size());
    EXPECT_EQ(good + bad, trace.size());
}

TEST(ServeSlo, HandComputedCountsAndBurnRate)
{
    ServeFleet fleet = makeFleet();
    std::vector<ServeRequest> trace(4);
    for (uint32_t i = 0; i < 4; ++i) {
        trace[i].id = i;
        trace[i].matrix = i % 2;
    }
    ServeResult res;
    res.completed = 4;
    res.latencyUs = {1.0, 2.0, 3.0, 4.0};

    SloReport r = computeSlo(res, trace, fleet, 2.5, 0.95);
    EXPECT_EQ(r.total.good, 2u);
    EXPECT_EQ(r.total.bad, 2u);
    EXPECT_DOUBLE_EQ(r.badFraction(), 0.5);
    EXPECT_NEAR(r.burnRate(), 0.5 / 0.05, 1e-9);
    EXPECT_DOUBLE_EQ(r.total.p50, 2.5);

    // Matrix 0 saw latencies {1, 3}; matrix 1 saw {2, 4}; matrix 2
    // served nothing but keeps its row so fleet indexing holds.
    ASSERT_EQ(r.perMatrix.size(), fleet.size());
    EXPECT_EQ(r.perMatrix[0].requests, 2u);
    EXPECT_EQ(r.perMatrix[0].good, 1u);
    EXPECT_EQ(r.perMatrix[0].bad, 1u);
    EXPECT_DOUBLE_EQ(r.perMatrix[0].p50, 2.0);
    EXPECT_EQ(r.perMatrix[1].requests, 2u);
    EXPECT_DOUBLE_EQ(r.perMatrix[1].p50, 3.0);
    EXPECT_EQ(r.perMatrix[2].requests, 0u);
    EXPECT_EQ(r.perMatrix[2].good, 0u);
    EXPECT_EQ(r.perMatrix[2].bad, 0u);
}
