/**
 * @file
 * Serving-mode properties (ISSUE 8): replayable trace generation, the
 * deterministic batching plan, and the equivalence contract -- batched
 * serving stays bit-identical per request to the unbatched engine, the
 * unbatched stream matches a plain serial loop, and every modeled
 * number is invariant under the worker thread count.  Plus the bounded
 * admission queue and concurrent schedule-cache lookups (the
 * ServeConcurrency suite runs under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <thread>

#include "alrescha/serve.hh"
#include "common/random.hh"
#include "common/request_queue.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

std::string
statDump(Engine &e)
{
    std::ostringstream os;
    e.statGroup().dump(os);
    return os.str();
}

/** Three small PDE matrices with distinct structure. */
std::vector<CsrMatrix>
testMatrices()
{
    Rng rng(3);
    return {gen::stencil2d(8, 8), gen::banded(49, 4, 0.8, rng),
            gen::randomSpd(37, 4, rng)};
}

ServeFleet
makeFleet(const AccelParams &params = {})
{
    ServeFleet fleet(params);
    std::vector<CsrMatrix> ms = testMatrices();
    for (size_t i = 0; i < ms.size(); ++i)
        fleet.add("m" + std::to_string(i), ms[i], true);
    fleet.warmSchedules();
    return fleet;
}

TraceParams
smallTrace(uint32_t requests = 40)
{
    TraceParams tp;
    tp.requests = requests;
    tp.burstiness = 0.5;
    tp.pcgWeight = 0.05;
    return tp;
}

/** Drain the trace the trivial way: one accelerator per matrix, the
 *  requests run serially in arrival order.  The ground truth the
 *  serving loop must reproduce bit for bit. */
struct SerialReference
{
    std::vector<std::unique_ptr<Accelerator>> accs;
    std::vector<DenseVector> results;

    SerialReference(const std::vector<CsrMatrix> &ms,
                    const std::vector<ServeRequest> &trace,
                    const ServeConfig &cfg, const AccelParams &params = {})
    {
        for (const CsrMatrix &m : ms) {
            accs.push_back(std::make_unique<Accelerator>(params));
            accs.back()->loadPde(m);
        }
        results.resize(trace.size());
        for (const ServeRequest &r : trace) {
            Accelerator &acc = *accs[r.matrix];
            Index n = acc.matrix().rows();
            DenseVector rhs = serveRequestRhs(cfg.rhsSeed, r.id, n);
            if (r.op == ServeOp::Spmv) {
                results[r.id] = acc.spmv(rhs);
            } else if (r.op == ServeOp::Symgs) {
                DenseVector x(n, 0.0);
                acc.symgsSweep(rhs, x, GsSweep::Symmetric);
                results[r.id] = std::move(x);
            } else {
                PcgOptions opts;
                opts.maxIterations = cfg.pcgIterations;
                results[r.id] = acc.pcg(rhs, opts).x;
            }
        }
    }
};

} // namespace

TEST(ServeTrace, DeterministicAndSeedSensitive)
{
    std::vector<uint8_t> mask{1, 1, 1, 1};
    TraceParams tp = smallTrace(200);
    std::vector<ServeRequest> t1 = generateTrace(tp, mask);
    std::vector<ServeRequest> t2 = generateTrace(tp, mask);
    ASSERT_EQ(t1.size(), t2.size());
    for (size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].id, uint32_t(i));
        EXPECT_EQ(t1[i].matrix, t2[i].matrix);
        EXPECT_EQ(t1[i].op, t2[i].op);
        EXPECT_LT(t1[i].matrix, mask.size());
    }

    tp.seed += 1;
    std::vector<ServeRequest> t3 = generateTrace(tp, mask);
    bool differs = false;
    for (size_t i = 0; i < t1.size(); ++i)
        differs |= t1[i].matrix != t3[i].matrix || t1[i].op != t3[i].op;
    EXPECT_TRUE(differs);
}

TEST(ServeTrace, ZipfSkewsTowardTheHeadAndMaskForcesSpmv)
{
    std::vector<uint8_t> mask{1, 0, 1, 0};
    TraceParams tp = smallTrace(2000);
    tp.zipfS = 1.2;
    tp.burstiness = 0.0;
    std::vector<ServeRequest> trace = generateTrace(tp, mask);

    std::vector<uint32_t> counts(mask.size(), 0);
    for (const ServeRequest &r : trace) {
        ++counts[r.matrix];
        if (!mask[r.matrix])
            EXPECT_EQ(r.op, ServeOp::Spmv);
    }
    // Matrix 0 is the Zipf head: strictly most popular.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[0], counts[2]);
    EXPECT_GT(counts[0], counts[3]);
}

TEST(ServePlan, WindowOnePreservesArrivalOrder)
{
    std::vector<uint8_t> mask{1, 1, 1};
    std::vector<ServeRequest> trace = generateTrace(smallTrace(60), mask);
    std::vector<ServeWorkItem> plan = buildServePlan(trace, 1);
    ASSERT_EQ(plan.size(), trace.size());
    std::vector<uint64_t> seq(mask.size(), 0);
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].requestIds.size(), 1u);
        EXPECT_EQ(plan[i].requestIds[0], trace[i].id);
        EXPECT_EQ(plan[i].matrix, trace[i].matrix);
        EXPECT_EQ(plan[i].op, trace[i].op);
        EXPECT_EQ(plan[i].seq, seq[plan[i].matrix]++);
    }
}

TEST(ServePlan, CoalescesOnlySameMatrixSpmvWithinWindow)
{
    std::vector<uint8_t> mask{1, 1, 1};
    std::vector<ServeRequest> trace = generateTrace(smallTrace(200), mask);
    const uint32_t window = 6;
    std::vector<ServeWorkItem> plan = buildServePlan(trace, window);

    // Every request appears exactly once across the plan.
    std::vector<int> seen(trace.size(), 0);
    for (const ServeWorkItem &item : plan) {
        EXPECT_LE(item.requestIds.size(), size_t(window));
        if (item.op != ServeOp::Spmv)
            EXPECT_EQ(item.requestIds.size(), 1u);
        uint32_t anchor = item.requestIds.front();
        for (uint32_t id : item.requestIds) {
            ++seen[id];
            EXPECT_EQ(trace[id].matrix, item.matrix);
            if (item.requestIds.size() > 1) {
                EXPECT_EQ(trace[id].op, ServeOp::Spmv);
                // Window bound: absorbed ids arrive within window-1 of
                // the anchor.
                EXPECT_LT(id - anchor, window);
            }
        }
    }
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "request " << i;

    // The plan is a pure function of (trace, window).
    std::vector<ServeWorkItem> again = buildServePlan(trace, window);
    ASSERT_EQ(plan.size(), again.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].requestIds, again[i].requestIds);
        EXPECT_EQ(plan[i].seq, again[i].seq);
    }
    // Batching actually happened on this bursty trace.
    EXPECT_LT(plan.size(), trace.size());
}

TEST(ServeEquivalence, UnbatchedServeMatchesSerialLoop)
{
    std::vector<CsrMatrix> ms = testMatrices();
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(), {1, 1, 1});
    ServeConfig cfg;
    cfg.batchWindow = 1;
    cfg.keepResults = true;
    cfg.pcgIterations = 4;

    ServeFleet fleet = makeFleet();
    ServeResult res = serve(fleet, trace, cfg);
    SerialReference ref(ms, trace, cfg);

    ASSERT_EQ(res.completed, trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(res.results[i], ref.results[i]) << "request " << i;
    // Modeled counters match the serial loop engine for engine: the
    // serving layer added queuing, threads, and locks but changed no
    // modeled number.
    for (size_t m = 0; m < ms.size(); ++m) {
        EXPECT_EQ(fleet.at(m).engine().totalCycles(),
                  ref.accs[m]->engine().totalCycles());
        EXPECT_EQ(statDump(fleet.at(m).engine()),
                  statDump(ref.accs[m]->engine()));
    }
}

TEST(ServeEquivalence, BatchedResultsBitIdenticalPerRequest)
{
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(60), {1, 1, 1});
    ServeConfig off;
    off.batchWindow = 1;
    off.keepResults = true;
    off.pcgIterations = 4;
    ServeConfig on = off;
    on.batchWindow = 8;

    ServeFleet f1 = makeFleet();
    ServeResult r1 = serve(f1, trace, off);
    ServeFleet f2 = makeFleet();
    ServeResult r2 = serve(f2, trace, on);

    EXPECT_LT(r2.workItems, r1.workItems); // coalescing happened
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(r1.results[i], r2.results[i]) << "request " << i;
    // Batching reduces the fleet's modeled cycles (the matrix streams
    // once per batch) -- that is the serving win, measured, not free.
    EXPECT_LT(f2.totalCycles(), f1.totalCycles());
}

TEST(ServeEquivalence, ThreadCountInvariant)
{
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(60), {1, 1, 1});
    ServeConfig cfg;
    cfg.batchWindow = 4;
    cfg.keepResults = true;
    cfg.pcgIterations = 4;

    ServeConfig cfg4 = cfg;
    cfg4.threads = 4;
    cfg4.queueDepth = 3; // exercise producer back-pressure too

    ServeFleet f1 = makeFleet();
    ServeResult r1 = serve(f1, trace, cfg);
    ServeFleet f4 = makeFleet();
    ServeResult r4 = serve(f4, trace, cfg4);

    EXPECT_EQ(r1.completed, r4.completed);
    EXPECT_EQ(r1.workItems, r4.workItems);
    EXPECT_EQ(r1.checksums, r4.checksums);
    EXPECT_EQ(r1.modeledCycles, r4.modeledCycles);
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(r1.results[i], r4.results[i]) << "request " << i;
    for (size_t m = 0; m < f1.size(); ++m) {
        EXPECT_EQ(f1.at(m).engine().totalCycles(),
                  f4.at(m).engine().totalCycles());
        EXPECT_EQ(statDump(f1.at(m).engine()),
                  statDump(f4.at(m).engine()));
    }
}

TEST(ServeFleetTest, WarmSchedulesCompilesEverythingOnce)
{
    ServeFleet fleet = makeFleet();
    // Three PDE entries x three tables each.
    EXPECT_EQ(fleet.scheduleCompiles(), 9u);
    ServeConfig cfg;
    cfg.pcgIterations = 2;
    std::vector<ServeRequest> trace =
        generateTrace(smallTrace(30), fleet.pdeMask());
    serve(fleet, trace, cfg);
    // Serving replays the warm schedules; nothing recompiles.
    EXPECT_EQ(fleet.scheduleCompiles(), 9u);
}

TEST(ServeFleetTest, CacheRoundTripThroughDirectory)
{
    std::string dir = ::testing::TempDir() + "serve_caches";
    std::filesystem::create_directories(dir);

    ServeFleet cold = makeFleet();
    EXPECT_EQ(cold.saveScheduleCaches(dir), cold.size());

    ServeFleet warm;
    std::vector<CsrMatrix> ms = testMatrices();
    for (size_t i = 0; i < ms.size(); ++i)
        warm.add("m" + std::to_string(i), ms[i], true);
    EXPECT_EQ(warm.restoreScheduleCaches(dir), warm.size());
    warm.warmSchedules();
    EXPECT_EQ(warm.scheduleCompiles(), 0u) << "warm start compiled";

    std::filesystem::remove_all(dir);
}

TEST(ServeConcurrency, RequestQueueBoundsAndDrains)
{
    RequestQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)) << "capacity must bound admissions";
    EXPECT_EQ(q.size(), 2u);

    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.push(3));
    q.close();
    EXPECT_FALSE(q.push(4)) << "closed queue must refuse admissions";
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 3) << "pending items drain after close";
    EXPECT_FALSE(q.pop(v)) << "drained + closed pops false";
}

TEST(ServeConcurrency, ProducersAndConsumersSeeEveryItem)
{
    RequestQueue<int> q(4);
    constexpr int kItems = 2000;
    std::atomic<long> sum{0};
    std::atomic<int> count{0};

    std::vector<std::thread> consumers;
    for (int t = 0; t < 3; ++t) {
        consumers.emplace_back([&] {
            int v;
            while (q.pop(v)) {
                sum += v;
                ++count;
            }
        });
    }
    std::vector<std::thread> producers;
    for (int t = 0; t < 2; ++t) {
        producers.emplace_back([&, t] {
            for (int i = t; i < kItems; i += 2)
                ASSERT_TRUE(q.push(i));
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(count.load(), kItems);
    EXPECT_EQ(sum.load(), long(kItems) * (kItems - 1) / 2);
}

TEST(ServeConcurrency, ParallelScheduleLookupsAreSafe)
{
    // Many threads hammer prepareSchedule() on one programmed engine:
    // the cache mutex must serialize the MRU reorder (this test runs
    // under TSan in CI) and exactly one compile must happen.
    Rng rng(17);
    CsrMatrix a = gen::randomSpd(64, 5, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    auto table = ConfigTable::convert(KernelType::SpMV, ld);

    AccelParams params;
    params.omega = 8;
    Engine e(params);
    e.program(&ld, &table);

    std::vector<std::thread> threads;
    std::atomic<int> nulls{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                if (!e.prepareSchedule())
                    ++nulls;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(nulls.load(), 0);
    EXPECT_EQ(e.scheduleCompiles(), 1u);
    EXPECT_EQ(e.cachedSchedules(), 1u);
}
