/**
 * @file
 * Dataset-suite tests: the synthetic stand-ins must be structurally
 * usable (SPD scientific matrices, connected-enough graphs) and
 * deterministic across calls.
 */

#include <gtest/gtest.h>

#include "datasets/suites.hh"
#include "kernels/graph.hh"
#include "kernels/pcg.hh"
#include "kernels/spmv.hh"
#include "sparse/pattern_stats.hh"

namespace alr {
namespace {

TEST(ScientificSuite, HasTenCategorizedEntries)
{
    auto suite = scientificSuite();
    EXPECT_EQ(suite.size(), 10u);
    for (const Dataset &d : suite) {
        EXPECT_FALSE(d.name.empty());
        EXPECT_FALSE(d.category.empty());
        EXPECT_GT(d.matrix.nnz(), 0u);
        EXPECT_EQ(d.matrix.rows(), d.matrix.cols()) << d.name;
    }
}

TEST(ScientificSuite, AllMatricesAreSymmetricWithPositiveDiagonal)
{
    for (const Dataset &d : scientificSuite()) {
        EXPECT_TRUE(d.matrix.isSymmetric(1e-9)) << d.name;
        for (Index r = 0; r < d.matrix.rows(); ++r)
            ASSERT_GT(d.matrix.at(r, r), 0.0) << d.name << " row " << r;
    }
}

TEST(ScientificSuite, PcgConvergesOnEveryEntry)
{
    for (const Dataset &d : scientificSuite()) {
        DenseVector b(d.matrix.rows(), 1.0);
        PcgOptions opts;
        opts.maxIterations = 300;
        opts.tolerance = 1e-8;
        PcgResult res = pcgSolve(d.matrix, b, opts);
        EXPECT_TRUE(res.converged) << d.name << " rel residual "
                                   << res.relResidual;
    }
}

TEST(ScientificSuite, CoversArangeOfBlockDensities)
{
    double lo = 1.0, hi = 0.0;
    for (const Dataset &d : scientificSuite()) {
        PatternStats s = analyzePattern(d.matrix, 8);
        lo = std::min(lo, s.blockDensity);
        hi = std::max(hi, s.blockDensity);
    }
    // The paper's point: speedups vary with the non-zero distribution,
    // so the suite must span sparse-in-block to dense-in-block regimes.
    EXPECT_LT(lo, 0.3);
    EXPECT_GT(hi, 0.6);
}

TEST(GraphSuite, HasEightEntriesMatchingTable3Families)
{
    auto suite = graphSuite();
    EXPECT_EQ(suite.size(), 8u);
    bool road = false, kron = false, social = false;
    for (const Dataset &d : suite) {
        EXPECT_GT(d.matrix.nnz(), 0u);
        road |= d.category == "road";
        kron |= d.category == "kronecker";
        social |= d.category == "social";
    }
    EXPECT_TRUE(road);
    EXPECT_TRUE(kron);
    EXPECT_TRUE(social);
}

TEST(GraphSuite, RoadNetworkHasLowDegreeAndHighDiameter)
{
    auto suite = graphSuite();
    const Dataset &road = findDataset(suite, "roadnet-like");
    PatternStats s = analyzePattern(road.matrix, 8);
    EXPECT_LT(s.meanRowNnz, 5.0);

    int rounds = 0;
    bfsLinAlg(road.matrix, 0, &rounds);
    EXPECT_GT(rounds, 50); // long-diameter regime
}

TEST(GraphSuite, SocialGraphsAreSkewed)
{
    auto suite = graphSuite();
    const Dataset &orkut = findDataset(suite, "orkut-like");
    PatternStats s = analyzePattern(orkut.matrix, 8);
    EXPECT_GT(double(s.maxRowNnz), 8.0 * s.meanRowNnz);
}

TEST(Suites, DeterministicAcrossCalls)
{
    auto a = scientificSuite();
    auto b = scientificSuite();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].matrix, b[i].matrix) << a[i].name;
}

TEST(SuitesDeath, FindRejectsUnknownName)
{
    auto suite = graphSuite();
    EXPECT_DEATH(findDataset(suite, "does-not-exist"), "no dataset");
}

} // namespace
} // namespace alr
