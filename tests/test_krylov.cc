/**
 * @file
 * Krylov-solver and extension-kernel tests: BiCGSTAB/GMRES on host and
 * accelerator, sparse triangular solves on the D-SymGS machinery, and
 * connected components by min-label propagation.
 */

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "kernels/blas1.hh"
#include "kernels/graph.hh"
#include "kernels/krylov.hh"
#include "kernels/spmv.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

DenseVector
randomVector(Index n, uint64_t seed)
{
    Rng rng(seed);
    DenseVector v(n);
    for (auto &e : v)
        e = rng.nextDouble(-1.0, 1.0);
    return v;
}

/** A diagonally dominant but *nonsymmetric* system. */
CsrMatrix
nonsymmetricSystem(Index n, uint64_t seed)
{
    Rng rng(seed);
    CooMatrix coo(n, n);
    for (Index r = 0; r < n; ++r) {
        Value offsum = 0.0;
        for (Index k = 0; k < 4; ++k) {
            Index c = Index(rng.nextRange(n));
            if (c == r)
                continue;
            Value v = rng.nextDouble(-1.0, 1.0);
            coo.add(r, c, v);
            offsum += std::abs(v);
        }
        coo.add(r, r, offsum + 1.0);
    }
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

TEST(Bicgstab, SolvesNonsymmetricSystem)
{
    CsrMatrix a = nonsymmetricSystem(80, 1);
    DenseVector xTrue = randomVector(80, 2);
    DenseVector b = spmv(a, xTrue);
    KrylovResult res = bicgstabSolve(a, b);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(maxAbsDiff(res.x, xTrue), 1e-6);
}

TEST(Bicgstab, SolvesSpdSystemToo)
{
    CsrMatrix a = gen::stencil2d(10, 10, 5);
    DenseVector xTrue = randomVector(100, 3);
    DenseVector b = spmv(a, xTrue);
    KrylovResult res = bicgstabSolve(a, b);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(maxAbsDiff(res.x, xTrue), 1e-6);
}

TEST(Bicgstab, ZeroRhsConvergesImmediately)
{
    CsrMatrix a = nonsymmetricSystem(20, 4);
    KrylovResult res = bicgstabSolve(a, DenseVector(20, 0.0));
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 0);
}

TEST(Gmres, SolvesNonsymmetricSystem)
{
    CsrMatrix a = nonsymmetricSystem(60, 5);
    DenseVector xTrue = randomVector(60, 6);
    DenseVector b = spmv(a, xTrue);
    KrylovResult res = gmresSolve(a, b);
    EXPECT_TRUE(res.converged) << "residual " << res.relResidual;
    EXPECT_LT(maxAbsDiff(res.x, xTrue), 1e-6);
}

TEST(Gmres, RestartsStillConverge)
{
    CsrMatrix a = nonsymmetricSystem(90, 7);
    DenseVector xTrue = randomVector(90, 8);
    DenseVector b = spmv(a, xTrue);
    GmresOptions opts;
    opts.restart = 5; // force many restart cycles
    opts.maxIterations = 2000;
    KrylovResult res = gmresSolve(a, b, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(maxAbsDiff(res.x, xTrue), 1e-5);
}

TEST(Gmres, FullSubspaceIsDirectSolve)
{
    // With restart >= n, GMRES solves in at most n inner iterations.
    CsrMatrix a = nonsymmetricSystem(24, 9);
    DenseVector b = randomVector(24, 10);
    GmresOptions opts;
    opts.restart = 24;
    KrylovResult res = gmresSolve(a, b, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 24);
}

TEST(Krylov, AcceleratedSolversMatchHost)
{
    CsrMatrix a = nonsymmetricSystem(48, 11);
    DenseVector xTrue = randomVector(48, 12);
    DenseVector b = spmv(a, xTrue);

    Accelerator acc;
    acc.loadSpmvOnly(a);
    KrylovResult bi = acc.bicgstab(b);
    EXPECT_TRUE(bi.converged);
    EXPECT_LT(maxAbsDiff(bi.x, xTrue), 1e-6);

    KrylovResult gm = acc.gmres(b);
    EXPECT_TRUE(gm.converged);
    EXPECT_LT(maxAbsDiff(gm.x, xTrue), 1e-6);
    EXPECT_GT(acc.report().cycles, 0u);
}

TEST(Sptrsv, LowerSolveIsExactInOneSweep)
{
    // Build a lower-triangular system with unit-ish diagonal.
    Rng rng(13);
    CooMatrix coo(40, 40);
    for (Index r = 0; r < 40; ++r) {
        coo.add(r, r, 2.0 + rng.nextDouble());
        for (Index k = 0; k < 3 && r > 0; ++k)
            coo.add(r, Index(rng.nextRange(r)), rng.nextDouble(-1.0, 1.0));
    }
    coo.canonicalize();
    CsrMatrix l = CsrMatrix::fromCoo(coo);

    DenseVector xTrue = randomVector(40, 14);
    DenseVector b = spmv(l, xTrue);

    Accelerator acc;
    acc.loadPde(l);
    DenseVector x = acc.sptrsvLower(b);
    EXPECT_LT(maxAbsDiff(x, xTrue), 1e-10);
}

TEST(Sptrsv, UpperSolveIsExactInOneSweep)
{
    Rng rng(15);
    CooMatrix coo(40, 40);
    for (Index r = 0; r < 40; ++r) {
        coo.add(r, r, 2.0 + rng.nextDouble());
        for (Index k = 0; k < 3 && r + 1 < 40; ++k) {
            Index c = r + 1 + Index(rng.nextRange(40 - r - 1));
            coo.add(r, c, rng.nextDouble(-1.0, 1.0));
        }
    }
    coo.canonicalize();
    CsrMatrix u = CsrMatrix::fromCoo(coo);

    DenseVector xTrue = randomVector(40, 16);
    DenseVector b = spmv(u, xTrue);

    Accelerator acc;
    acc.loadPde(u);
    DenseVector x = acc.sptrsvUpper(b);
    EXPECT_LT(maxAbsDiff(x, xTrue), 1e-10);
}

TEST(Components, ReferenceFindsDisjointChains)
{
    CooMatrix coo(7, 7);
    coo.add(0, 1, 1.0);
    coo.add(1, 0, 1.0);
    coo.add(2, 3, 1.0);
    coo.add(3, 2, 1.0);
    coo.add(3, 4, 1.0);
    coo.add(4, 3, 1.0);
    CsrMatrix g = CsrMatrix::fromCoo(coo);
    DenseVector labels = connectedComponentsReference(g);
    EXPECT_DOUBLE_EQ(labels[0], 0.0);
    EXPECT_DOUBLE_EQ(labels[1], 0.0);
    EXPECT_DOUBLE_EQ(labels[2], 2.0);
    EXPECT_DOUBLE_EQ(labels[4], 2.0);
    EXPECT_DOUBLE_EQ(labels[5], 5.0); // isolated
    EXPECT_DOUBLE_EQ(labels[6], 6.0);
}

TEST(Components, AcceleratorMatchesReferenceOnSymmetricGraphs)
{
    Rng rng(17);
    CsrMatrix g = gen::roadGrid(12, 9, 0.0, rng);
    Accelerator acc;
    acc.loadGraph(g);
    GraphResult res = acc.connectedComponents();
    EXPECT_EQ(res.values, connectedComponentsReference(g));
    EXPECT_GE(res.rounds, 1);
}

TEST(Components, MultipleComponentsOnAccelerator)
{
    // Two disjoint grids glued into one adjacency matrix.
    Rng rng(18);
    CsrMatrix g1 = gen::roadGrid(5, 4, 0.0, rng);
    CooMatrix coo(40, 40);
    for (Index r = 0; r < 20; ++r) {
        for (Index k = g1.rowPtr()[r]; k < g1.rowPtr()[r + 1]; ++k) {
            coo.add(r, g1.colIdx()[k], g1.vals()[k]);
            coo.add(r + 20, g1.colIdx()[k] + 20, g1.vals()[k]);
        }
    }
    CsrMatrix g = CsrMatrix::fromCoo(coo);

    Accelerator acc;
    acc.loadGraph(g);
    GraphResult res = acc.connectedComponents();
    for (Index v = 0; v < 20; ++v) {
        EXPECT_DOUBLE_EQ(res.values[v], 0.0);
        EXPECT_DOUBLE_EQ(res.values[v + 20], 20.0);
    }
}

} // namespace
} // namespace alr
