/**
 * @file
 * Runtime replay dispatch and constant-folded specialization (ISSUE 7):
 *
 *  - every --simd mode the machine runs must replay bit-identically to
 *    the interpreter (results, cycles, the whole stat dump);
 *  - irregular shapes (omega not in {2,4,8}, empty schedules, a single
 *    block row) must take the Generic fallback under every mode;
 *  - forcing an unavailable ISA (params or ALR_SIMD_FORCE) must fall
 *    back down the dispatch chain with a warning, never crash;
 *  - compileSchedule must stamp the specialized entry points (and the
 *    per-call wrappers when specializeReplay is off) and detect
 *    contiguous row layouts;
 *  - the build must keep FP contraction off: a reduction whose result
 *    is exact 0.0 under separate rounding would come out nonzero if
 *    the compiler fused the product into the tree add as an FMA.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "alrescha/accelerator.hh"
#include "alrescha/sim/replay.hh"
#include "alrescha/sim/replay_isa.hh"
#include "alrescha/sim/schedule.hh"
#include "common/random.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

std::string
statDump(Engine &e)
{
    std::ostringstream os;
    e.statGroup().dump(os);
    return os.str();
}

AccelParams
makeParams(Index omega, bool use_schedule, SimdMode mode,
           bool specialize = true)
{
    AccelParams p;
    p.omega = omega;
    p.useSchedule = use_schedule;
    p.engineThreads = 1;
    p.simdMode = mode;
    p.specializeReplay = specialize;
    return p;
}

/** Every SimdMode, including ones this machine cannot run. */
const std::vector<SimdMode> kAllModes = {
    SimdMode::Auto,   SimdMode::Scalar, SimdMode::Sse2,
    SimdMode::Avx2,   SimdMode::Avx512, SimdMode::Neon,
};

/** Modes that resolve to their own table here (no fallback). */
std::vector<SimdMode>
runnableModes()
{
    std::vector<SimdMode> modes = {SimdMode::Auto};
    for (SimdMode m : kAllModes) {
        if (m != SimdMode::Auto &&
            std::string(replay::selectedName(m)) == replay::toString(m))
            modes.push_back(m);
    }
    return modes;
}

/**
 * Run SpMV, SpMM, and a SymGS sweep through an interpreter engine and
 * a scheduled engine at @p mode; every result, cycle count, and the
 * serialized stat dumps must agree exactly.
 */
void
expectModeBitIdentical(const CsrMatrix &a, Index omega, SimdMode mode,
                       bool specialize = true)
{
    SCOPED_TRACE(std::string("mode=") + replay::toString(mode) +
                 " omega=" + std::to_string(omega));
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, omega, LdLayout::SymGs);
    ConfigTable spmv = ConfigTable::convert(KernelType::SpMV, ld);
    ConfigTable symgs = ConfigTable::convert(KernelType::SymGS, ld, true,
                                             GsSweep::Forward);

    Engine ref(makeParams(omega, false, SimdMode::Scalar));
    Engine sch(makeParams(omega, true, mode, specialize));

    DenseVector x(a.cols());
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = Value(i % 13) - 6.0;

    ref.program(&ld, &spmv);
    sch.program(&ld, &spmv);
    for (int run = 0; run < 2; ++run) {
        RunTiming tr, ts;
        DenseVector yr = ref.runSpmv(x, &tr);
        DenseVector ys = sch.runSpmv(x, &ts);
        ASSERT_EQ(yr, ys) << "spmv run " << run;
        EXPECT_EQ(tr.cycles, ts.cycles) << "spmv run " << run;
    }
    std::vector<DenseVector> xs(3, x);
    for (size_t j = 0; j < xs.size(); ++j)
        for (size_t i = 0; i < xs[j].size(); ++i)
            xs[j][i] = Value((i * (j + 2)) % 17) - 8.0;
    ASSERT_EQ(ref.runSpmm(xs), sch.runSpmm(xs));

    ref.program(&ld, &symgs);
    sch.program(&ld, &symgs);
    DenseVector b(a.rows(), 1.0);
    DenseVector xr(a.rows(), 0.0), xv(a.rows(), 0.0);
    for (int run = 0; run < 2; ++run) {
        RunTiming tr, ts;
        ref.runSymgsSweep(b, xr, &tr);
        sch.runSymgsSweep(b, xv, &ts);
        ASSERT_EQ(xr, xv) << "symgs sweep " << run;
        EXPECT_EQ(tr.cycles, ts.cycles) << "symgs sweep " << run;
    }
    EXPECT_EQ(statDump(ref), statDump(sch));
}

} // namespace

// ---------------------------------------------------------------------
// Per-mode equivalence at the specialized omegas.
// ---------------------------------------------------------------------

TEST(ReplayDispatch, EveryRunnableModeBitIdentical)
{
    Rng rng(41);
    CsrMatrix a = gen::banded(101, 5, 0.7, rng);
    for (SimdMode mode : runnableModes())
        for (Index omega : {Index(2), Index(4), Index(8)})
            expectModeBitIdentical(a, omega, mode);
}

TEST(ReplayDispatch, UnspecializedWrappersBitIdentical)
{
    // specializeReplay=false replays through the per-call dispatch
    // wrappers (the PR 3-style loop) -- same bits, just slower.
    Rng rng(42);
    CsrMatrix a = gen::banded(97, 6, 0.6, rng);
    for (Index omega : {Index(2), Index(4), Index(8)})
        expectModeBitIdentical(a, omega, SimdMode::Auto,
                               /*specialize=*/false);
}

// ---------------------------------------------------------------------
// Generic fallback at irregular shapes, under every forced mode.
// ---------------------------------------------------------------------

TEST(ReplayDispatch, IrregularOmegaUsesGenericArm)
{
    // omega=6 has no specialized kernel: compileSchedule must stamp
    // the wrappers and the wrappers must take the runtime-omega arm.
    Rng rng(43);
    CsrMatrix a = gen::banded(89, 4, 0.8, rng);
    for (SimdMode mode : kAllModes)
        expectModeBitIdentical(a, 6, mode);
}

TEST(ReplayDispatch, EmptyScheduleEveryMode)
{
    CsrMatrix a = CsrMatrix::fromCoo(CooMatrix(16, 16));
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);
    for (SimdMode mode : kAllModes) {
        Engine e(makeParams(8, true, mode));
        e.program(&ld, &table);
        DenseVector x(16, 3.0);
        EXPECT_EQ(e.runSpmv(x), DenseVector(16, 0.0))
            << replay::toString(mode);
    }
}

TEST(ReplayDispatch, SingleBlockRowEveryMode)
{
    // One omega-wide block row: exactly one path, one group.
    CooMatrix coo(8, 8);
    for (Index r = 0; r < 8; ++r)
        for (Index c = 0; c < 8; ++c)
            coo.add(r, c, Value(r + 1) + Value(c) * 0.25);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    for (SimdMode mode : kAllModes)
        expectModeBitIdentical(a, 8, mode);
}

// ---------------------------------------------------------------------
// Forced-mode fallback: never crash, always land on a runnable table.
// ---------------------------------------------------------------------

TEST(ReplayDispatch, ForcedModesNeverCrash)
{
    // Every forced mode must resolve to some runnable table -- on this
    // machine that may mean falling back down the chain (e.g. neon on
    // x86 lands on scalar) -- and then replay bit-identically.
    Rng rng(44);
    CsrMatrix a = gen::banded(67, 4, 0.7, rng);
    for (SimdMode mode : kAllModes) {
        const char *name = replay::selectedName(mode);
        ASSERT_NE(name, nullptr);
        EXPECT_FALSE(std::string(name).empty());
        expectModeBitIdentical(a, 8, mode);
    }
}

TEST(ReplayDispatch, ForcedModeNeverUpgrades)
{
    // A forced narrow mode must not resolve to a wider ISA: forcing
    // sse2 can fall back to scalar (non-x86 builds) but never to avx2.
    std::string sse2 = replay::selectedName(SimdMode::Sse2);
    EXPECT_TRUE(sse2 == "sse2" || sse2 == "scalar") << sse2;
    std::string avx2 = replay::selectedName(SimdMode::Avx2);
    EXPECT_TRUE(avx2 == "avx2" || avx2 == "sse2" || avx2 == "scalar")
        << avx2;
    EXPECT_STREQ(replay::selectedName(SimdMode::Scalar), "scalar");
}

TEST(ReplayDispatch, EnvForceAppliesToAutoOnly)
{
    // ALR_SIMD_FORCE=scalar retargets --simd auto but must not touch
    // an explicitly forced mode; bogus values are ignored with a
    // warning.  select() re-reads the variable on every call.
    ASSERT_EQ(setenv("ALR_SIMD_FORCE", "scalar", 1), 0);
    EXPECT_STREQ(replay::isaName(), "scalar");
    // An explicitly forced mode ignores the env override.
    EXPECT_STREQ(replay::selectedName(SimdMode::Scalar), "scalar");
    if (std::string(replay::selectedName(SimdMode::Sse2)) == "sse2") {
        EXPECT_STREQ(replay::selectedName(SimdMode::Sse2), "sse2");
    }
    ASSERT_EQ(setenv("ALR_SIMD_FORCE", "bogus-isa", 1), 0);
    std::string isa = replay::isaName(); // warns once, keeps auto
    EXPECT_NE(std::string(replay::compiledIsas()).find(isa),
              std::string::npos);
    ASSERT_EQ(unsetenv("ALR_SIMD_FORCE"), 0);

    // A run under a forced-unavailable env mode must still work.
    ASSERT_EQ(setenv("ALR_SIMD_FORCE", "neon", 1), 0);
    Rng rng(45);
    CsrMatrix a = gen::banded(53, 4, 0.8, rng);
    expectModeBitIdentical(a, 8, SimdMode::Auto);
    ASSERT_EQ(unsetenv("ALR_SIMD_FORCE"), 0);
}

// ---------------------------------------------------------------------
// Specialization stamping.
// ---------------------------------------------------------------------

TEST(ReplaySpecialize, StampsSpecializedEntryPoints)
{
    Rng rng(46);
    CsrMatrix a = gen::blockStructured(64, 8, 3, 0.6, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);
    AccelParams p = makeParams(8, true, SimdMode::Auto);
    ExecSchedule s = compileSchedule(ld, table, p);

    ASSERT_NE(s.replayTable, nullptr);
    ASSERT_NE(s.fns.spmv, nullptr);
    ASSERT_NE(s.fns.spmm, nullptr);
    ASSERT_NE(s.fns.symgs, nullptr);
    // omega=8 -> index 2; the stamped pointer must be the table slot
    // for the detected row layout.
    int ci = s.contiguousRows ? 1 : 0;
    EXPECT_EQ(s.fns.spmv, s.replayTable->spmv[2][ci]);
    EXPECT_EQ(s.fns.spmm, s.replayTable->spmm[2][ci]);
    EXPECT_EQ(s.fns.symgs, s.replayTable->symgs[2][ci]);

    // Unspecialized: wrappers, not table slots.
    p.specializeReplay = false;
    ExecSchedule w = compileSchedule(ld, table, p);
    ASSERT_NE(w.fns.spmv, nullptr);
    EXPECT_NE(w.fns.spmv, w.replayTable->spmv[2][0]);
    EXPECT_NE(w.fns.spmv, w.replayTable->spmv[2][1]);
}

TEST(ReplaySpecialize, DetectsContiguousRows)
{
    // Fully dense blocks: every row of every block occupied, so paths
    // cover consecutive rows and the contiguous kernels apply.
    CooMatrix dense(16, 16);
    for (Index r = 0; r < 16; ++r)
        for (Index c = 0; c < 16; ++c)
            dense.add(r, c, 1.0 + Value(r * 16 + c) * 0.01);
    CsrMatrix ad = CsrMatrix::fromCoo(dense);
    LocallyDenseMatrix ldd =
        LocallyDenseMatrix::encode(ad, 8, LdLayout::Plain);
    ConfigTable td = ConfigTable::convert(KernelType::SpMV, ldd);
    AccelParams p = makeParams(8, true, SimdMode::Auto);
    EXPECT_TRUE(compileSchedule(ldd, td, p).contiguousRows);

    // A block that skips a row: rows 0 and 2 occupied, row 1 empty --
    // the path's rows are not consecutive, so the scattered kernels
    // must be stamped, and they must still replay bit-identically.
    CooMatrix gap(16, 16);
    for (Index c = 0; c < 16; ++c) {
        gap.add(0, c, 1.0 + Value(c));
        gap.add(2, c, 2.0 + Value(c)); // row 1 of block 0 empty
    }
    CsrMatrix ag = CsrMatrix::fromCoo(gap);
    LocallyDenseMatrix ldg =
        LocallyDenseMatrix::encode(ag, 8, LdLayout::Plain);
    ConfigTable tg = ConfigTable::convert(KernelType::SpMV, ldg);
    ExecSchedule sg = compileSchedule(ldg, tg, p);
    EXPECT_FALSE(sg.contiguousRows);

    Engine ref(makeParams(8, false, SimdMode::Scalar));
    Engine sch(makeParams(8, true, SimdMode::Auto));
    ref.program(&ldg, &tg);
    sch.program(&ldg, &tg);
    DenseVector x(16);
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = Value(i) - 7.5;
    EXPECT_EQ(ref.runSpmv(x), sch.runSpmv(x));
}

// ---------------------------------------------------------------------
// FP contraction stays off (satellite 1).
// ---------------------------------------------------------------------

TEST(ReplayContract, NoFusedMultiplyAddInReductions)
{
    // Row 0 holds [1 + 2^-30, -1]; x = [1 - 2^-30, 1].  The product
    // (1 + 2^-30)(1 - 2^-30) = 1 - 2^-60 rounds to exactly 1.0 in
    // binary64, so the tree sum 1.0 + (-1.0) is exactly 0.0.  If the
    // compiler contracted the product into the tree add as an FMA the
    // unrounded 1 - 2^-60 would survive into the add and y[0] would be
    // about -2^-60, not 0.0.  This must hold in every replay mode and
    // the interpreter -- -ffp-contract=off is project-wide.
    const Value eps = std::ldexp(1.0, -30); // 2^-30
    CooMatrix coo(2, 2);
    coo.add(0, 0, 1.0 + eps);
    coo.add(0, 1, -1.0);
    coo.add(1, 1, 1.0);
    CsrMatrix a = CsrMatrix::fromCoo(coo);
    DenseVector x = {1.0 - eps, 1.0};

    for (SimdMode mode : kAllModes) {
        for (bool use_schedule : {false, true}) {
            Engine e(makeParams(2, use_schedule, mode));
            LocallyDenseMatrix ld =
                LocallyDenseMatrix::encode(a, 2, LdLayout::Plain);
            ConfigTable t = ConfigTable::convert(KernelType::SpMV, ld);
            e.program(&ld, &t);
            DenseVector y = e.runSpmv(x);
            EXPECT_EQ(y[0], 0.0)
                << replay::toString(mode)
                << (use_schedule ? " scheduled" : " interpreter");
            EXPECT_EQ(y[1], 1.0);
        }
    }
}

// ---------------------------------------------------------------------
// Provenance strings.
// ---------------------------------------------------------------------

TEST(ReplayDispatch, ProvenanceStrings)
{
    std::string compiled = replay::compiledIsas();
    EXPECT_EQ(compiled.rfind("scalar", 0), 0u) << compiled;
    for (SimdMode m : kAllModes) {
        ASSERT_NE(replay::toString(m), nullptr);
        SimdMode parsed;
        ASSERT_TRUE(replay::parseSimdMode(replay::toString(m), &parsed));
        EXPECT_EQ(parsed, m);
    }
    SimdMode parsed;
    EXPECT_FALSE(replay::parseSimdMode("avx99", &parsed));
    EXPECT_STREQ(replay::omegaSpecializations(), "2,4,8");
}
