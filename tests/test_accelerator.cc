/**
 * @file
 * Public-API tests for the Accelerator: loading, kernel dispatch,
 * telemetry reports, and misuse rejection.
 */

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "kernels/spmv.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

TEST(Accelerator, ReportAggregatesTelemetry)
{
    Rng rng(1);
    CsrMatrix a = gen::banded(256, 8, 0.7, rng);
    Accelerator acc;
    acc.loadPde(a);

    DenseVector b(256, 1.0), x(256, 0.0);
    acc.symgsSweep(b, x, GsSweep::Symmetric);

    AccelReport r = acc.report();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.energyJoules, 0.0);
    EXPECT_GT(r.bytesFromMemory, 0.0);
    EXPECT_GT(r.bandwidthUtilization, 0.0);
    EXPECT_LE(r.bandwidthUtilization, 1.0);
    EXPECT_GT(r.sequentialOpFraction, 0.0);
    EXPECT_LT(r.sequentialOpFraction, 1.0);
    EXPECT_GT(r.reconfigurations, 0.0);
    EXPECT_NEAR(r.energy.total(), r.energyJoules, 1e-15);
}

TEST(Accelerator, EnergyBreakdownComponentsPositive)
{
    Rng rng(2);
    CsrMatrix a = gen::blockStructured(128, 8, 3, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(DenseVector(128, 1.0));

    EnergyBreakdown e = acc.report().energy;
    EXPECT_GT(e.dram, 0.0);
    EXPECT_GT(e.sram, 0.0);
    EXPECT_GT(e.compute, 0.0);
    EXPECT_GT(e.staticEnergy, 0.0);
}

TEST(Accelerator, TableAccessorsExposeLoadedKernels)
{
    Rng rng(3);
    CsrMatrix a = gen::banded(64, 4, 0.8, rng);
    Accelerator acc;
    acc.loadPde(a);
    EXPECT_EQ(acc.table(KernelType::SymGS).kernel(), KernelType::SymGS);
    EXPECT_EQ(acc.table(KernelType::SymGS, GsSweep::Backward).direction(),
              GsSweep::Backward);
    EXPECT_EQ(acc.table(KernelType::SpMV).kernel(), KernelType::SpMV);

    CsrMatrix g = gen::rmat(6, 4, rng);
    acc.loadGraph(g);
    EXPECT_EQ(acc.table(KernelType::BFS).kernel(), KernelType::BFS);
    EXPECT_EQ(acc.table(KernelType::PageRank).kernel(),
              KernelType::PageRank);
}

TEST(AcceleratorDeath, GraphKernelsNeedGraphLoad)
{
    Rng rng(4);
    CsrMatrix a = gen::banded(64, 4, 0.8, rng);
    Accelerator acc;
    acc.loadPde(a);
    EXPECT_DEATH(acc.bfs(0), "loadGraph");
}

TEST(AcceleratorDeath, SymGsNeedsPdeLoad)
{
    Rng rng(5);
    CsrMatrix g = gen::rmat(6, 4, rng);
    Accelerator acc;
    acc.loadGraph(g);
    DenseVector b(g.rows(), 1.0), x(g.rows(), 0.0);
    EXPECT_DEATH(acc.symgsSweep(b, x, GsSweep::Forward), "loadPde");
}

TEST(AcceleratorDeath, KernelsBeforeLoadPanic)
{
    Accelerator acc;
    EXPECT_DEATH(acc.spmv({1.0}), "no matrix loaded");
}

TEST(Accelerator, ReloadReplacesMatrix)
{
    Rng rng(6);
    CsrMatrix a1 = gen::banded(64, 4, 0.8, rng);
    CsrMatrix a2 = gen::banded(128, 4, 0.8, rng);
    Accelerator acc;
    acc.loadPde(a1);
    EXPECT_EQ(acc.matrix().rows(), 64u);
    acc.loadPde(a2);
    EXPECT_EQ(acc.matrix().rows(), 128u);
    DenseVector x(128, 1.0);
    EXPECT_EQ(acc.spmv(x).size(), 128u);
}

TEST(Accelerator, StatsAccumulateAcrossRunsUntilReset)
{
    Rng rng(7);
    CsrMatrix a = gen::blockStructured(128, 8, 3, 0.8, rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    DenseVector x(128, 1.0);
    acc.spmv(x);
    uint64_t one = acc.engine().totalCycles();
    acc.spmv(x);
    EXPECT_NEAR(double(acc.engine().totalCycles()), 2.0 * double(one),
                double(one) * 0.1);
}

TEST(Accelerator, CustomOmegaFlowsThrough)
{
    AccelParams p;
    p.omega = 4;
    Rng rng(8);
    CsrMatrix a = gen::banded(64, 4, 0.8, rng);
    Accelerator acc(p);
    acc.loadPde(a);
    EXPECT_EQ(acc.matrix().omega(), 4u);
    EXPECT_EQ(acc.table(KernelType::SymGS).omega(), 4u);
}

TEST(Accelerator, PcgReportsHistoryAndConverges)
{
    CsrMatrix a = gen::stencil2d(10, 10, 5);
    DenseVector xTrue(100, 0.5);
    DenseVector b = spmv(a, xTrue);
    Accelerator acc;
    acc.loadPde(a);
    PcgResult res = acc.pcg(b);
    EXPECT_TRUE(res.converged);
    EXPECT_FALSE(res.history.empty());
    EXPECT_GT(acc.report().cycles, 0u);
}

} // namespace
} // namespace alr
