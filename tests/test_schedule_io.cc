/**
 * @file
 * Persistent schedule cache (ISSUE 8): content-hash keys, the
 * versioned on-disk format, warm starts with zero compiles, and the
 * recompile fallback on every corruption the loader can meet.  A
 * restored schedule must be indistinguishable from a compiled one --
 * results, cycles, and the whole stat dump bit for bit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "alrescha/accelerator.hh"
#include "alrescha/sim/replay.hh"
#include "alrescha/sim/schedule.hh"
#include "alrescha/sim/schedule_io.hh"
#include "common/random.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

std::string
statDump(Engine &e)
{
    std::ostringstream os;
    e.statGroup().dump(os);
    return os.str();
}

AccelParams
makeParams(Index omega = 8)
{
    AccelParams p;
    p.omega = omega;
    p.useSchedule = true;
    return p;
}

/** A small SpMV problem (matrix + table) owned together. */
struct Problem
{
    CsrMatrix a;
    LocallyDenseMatrix ld;
    ConfigTable table;

    explicit Problem(uint64_t seed, Index omega = 8)
        : a([&] {
              Rng rng(seed);
              return gen::randomSpd(73, 5, rng);
          }()),
          ld(LocallyDenseMatrix::encode(a, omega, LdLayout::Plain)),
          table(ConfigTable::convert(KernelType::SpMV, ld))
    {
    }
};

} // namespace

TEST(ContentHash, StableAcrossIdenticalObjects)
{
    // Two encodings of the same matrix hash identically even though
    // they are distinct objects with distinct generations -- that is
    // what makes the persisted cache restart-stable.
    Problem p1(42), p2(42);
    EXPECT_EQ(p1.ld.contentHash(), p2.ld.contentHash());
    EXPECT_EQ(p1.table.contentHash(), p2.table.contentHash());

    Problem other(43);
    EXPECT_NE(p1.ld.contentHash(), other.ld.contentHash());
}

TEST(ContentHash, PayloadChangesTheHash)
{
    Rng rng(7);
    CsrMatrix a = gen::randomSpd(48, 4, rng);
    CsrMatrix a2 = a;
    a2.vals()[0] *= 2.0; // same shape, one value differs
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    auto ld2 = LocallyDenseMatrix::encode(a2, 8, LdLayout::Plain);
    EXPECT_NE(ld.contentHash(), ld2.contentHash());
}

TEST(ScheduleSerialization, RoundTripReplaysBitIdentically)
{
    Problem p(11);
    AccelParams params = makeParams();
    ExecSchedule s = compileSchedule(p.ld, p.table, params);

    std::stringstream ss;
    serializeSchedule(ss, s);
    ExecSchedule back = deserializeSchedule(ss);
    replay::specialize(back, params);

    // Flat fields and every vector round-trip exactly.
    EXPECT_EQ(back.kernel, s.kernel);
    EXPECT_EQ(back.omega, s.omega);
    EXPECT_EQ(back.pathCount, s.pathCount);
    EXPECT_EQ(back.dp, s.dp);
    EXPECT_EQ(back.rowIndex, s.rowIndex);
    EXPECT_EQ(back.values, s.values);
    EXPECT_EQ(back.rowBegin, s.rowBegin);
    EXPECT_EQ(back.streamCycles, s.streamCycles);
    EXPECT_EQ(back.totalStreamBytes, s.totalStreamBytes);
    EXPECT_EQ(back.parFlops, s.parFlops);
    EXPECT_EQ(back.paddedOperand, s.paddedOperand);
}

TEST(ScheduleCachePersistence, WarmStartCompilesNothing)
{
    Problem p(21);
    AccelParams params = makeParams();
    DenseVector x(p.a.cols());
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = Value(i % 11) - 5.0;

    // Cold engine: compile, run, persist.
    Engine cold(params);
    cold.program(&p.ld, &p.table);
    DenseVector yCold = cold.runSpmv(x);
    EXPECT_EQ(cold.scheduleCompiles(), 1u);
    std::stringstream ss;
    ASSERT_TRUE(cold.saveScheduleCache(ss));

    // Warm engine: restore, program a *fresh copy* of the same matrix
    // (new generations, same content), run.  Zero compiles.
    Problem fresh(21);
    Engine warm(params);
    ASSERT_TRUE(warm.loadScheduleCache(ss));
    EXPECT_EQ(warm.restoredSchedules(), 1u);
    warm.program(&fresh.ld, &fresh.table);
    EXPECT_NE(warm.prepareSchedule(), nullptr);
    EXPECT_EQ(warm.scheduleCompiles(), 0u);

    // The restored schedule replays bit-identically: results, cycles,
    // and the entire stat dump.
    DenseVector yWarm = warm.runSpmv(x);
    EXPECT_EQ(yCold, yWarm);
    EXPECT_EQ(cold.totalCycles(), warm.totalCycles());
    EXPECT_EQ(statDump(cold), statDump(warm));
    EXPECT_EQ(warm.scheduleCompiles(), 0u);
}

TEST(ScheduleCachePersistence, MultiTableFleetRoundTrip)
{
    // A PDE accelerator persists all three schedules (SpMV + both
    // SymGS sweeps) and a rebuilt accelerator restores every one.
    CsrMatrix a = gen::stencil2d(9, 9);
    AccelParams params = makeParams();

    Accelerator cold(params);
    cold.loadPde(a);
    DenseVector b(a.rows(), 1.0), xc(a.rows(), 0.0);
    cold.spmv(b);
    cold.symgsSweep(b, xc, GsSweep::Symmetric);
    EXPECT_EQ(cold.engine().scheduleCompiles(), 3u);
    std::stringstream ss;
    ASSERT_TRUE(cold.engine().saveScheduleCache(ss));

    Accelerator warm(params);
    warm.loadPde(a);
    ASSERT_TRUE(warm.engine().loadScheduleCache(ss));
    EXPECT_EQ(warm.engine().restoredSchedules(), 3u);
    DenseVector xw(a.rows(), 0.0);
    DenseVector yw = warm.spmv(b);
    warm.symgsSweep(b, xw, GsSweep::Symmetric);
    EXPECT_EQ(warm.engine().scheduleCompiles(), 0u);
    EXPECT_EQ(xc, xw);
    EXPECT_EQ(cold.engine().totalCycles(), warm.engine().totalCycles());
    EXPECT_EQ(statDump(cold.engine()), statDump(warm.engine()));
}

TEST(ScheduleCachePersistence, FileRoundTripAndMissingFile)
{
    Problem p(31);
    Engine e(makeParams());
    e.program(&p.ld, &p.table);
    e.prepareSchedule();

    std::string path = ::testing::TempDir() + "sched_cache_rt.sched";
    ASSERT_TRUE(e.saveScheduleCacheFile(path));

    Engine warm(makeParams());
    EXPECT_TRUE(warm.loadScheduleCacheFile(path));
    EXPECT_EQ(warm.restoredSchedules(), 1u);

    // A missing file is a cold start, not an error.
    Engine cold2(makeParams());
    EXPECT_FALSE(cold2.loadScheduleCacheFile(path + ".does-not-exist"));
    EXPECT_EQ(cold2.restoredSchedules(), 0u);
    std::remove(path.c_str());
}

TEST(ScheduleCachePersistence, CorruptionFallsBackToRecompile)
{
    Problem p(41);
    Engine e(makeParams());
    e.program(&p.ld, &p.table);
    e.prepareSchedule();
    std::stringstream good;
    ASSERT_TRUE(e.saveScheduleCache(good));
    const std::string bytes = good.str();

    auto loadFails = [&](std::string mutated) {
        std::stringstream ss(std::move(mutated));
        Engine fresh(makeParams());
        bool ok = fresh.loadScheduleCache(ss);
        EXPECT_EQ(fresh.restoredSchedules(), 0u);
        return !ok;
    };

    // Wrong magic.
    {
        std::string bad = bytes;
        bad[0] = char(bad[0] + 1);
        EXPECT_TRUE(loadFails(bad));
    }
    // Truncated at every interesting boundary.
    EXPECT_TRUE(loadFails(bytes.substr(0, 3)));
    EXPECT_TRUE(loadFails(bytes.substr(0, 16)));
    EXPECT_TRUE(loadFails(bytes.substr(0, bytes.size() / 2)));
    EXPECT_TRUE(loadFails(bytes.substr(0, bytes.size() - 1)));
    // A flipped byte anywhere -- header fields or deep inside a
    // serialized double -- fails the body checksum (or a header gate)
    // and the loader rejects the whole file.
    for (size_t off : {size_t(9), size_t(20), size_t(40),
                       bytes.size() / 2, bytes.size() - 2}) {
        std::string bad = bytes;
        bad[off] = char(bad[off] ^ 0x5a);
        EXPECT_TRUE(loadFails(bad)) << "offset " << off;
    }
    // Empty stream.
    EXPECT_TRUE(loadFails(""));

    // After any failed load the engine recompiles and still computes
    // the right answer.
    Engine fresh(makeParams());
    std::stringstream trunc(bytes.substr(0, bytes.size() / 2));
    EXPECT_FALSE(fresh.loadScheduleCache(trunc));
    Problem same(41);
    fresh.program(&same.ld, &same.table);
    DenseVector x(p.a.cols(), 1.0);
    Engine ref(makeParams());
    Problem refp(41);
    ref.program(&refp.ld, &refp.table);
    EXPECT_EQ(fresh.runSpmv(x), ref.runSpmv(x));
    EXPECT_EQ(fresh.scheduleCompiles(), 1u);
}

TEST(ScheduleCachePersistence, ParamsFingerprintMismatchRejected)
{
    Problem p(51);
    Engine e(makeParams(8));
    e.program(&p.ld, &p.table);
    e.prepareSchedule();
    std::stringstream ss;
    ASSERT_TRUE(e.saveScheduleCache(ss));

    // A different omega reshapes every schedule: the fingerprint gate
    // rejects the whole file and the engine recompiles.
    AccelParams other = makeParams(8);
    other.cacheBytes *= 2;
    Engine warm(other);
    EXPECT_FALSE(warm.loadScheduleCache(ss));
    EXPECT_EQ(warm.restoredSchedules(), 0u);

    EXPECT_NE(scheduleParamsFingerprint(makeParams(8)),
              scheduleParamsFingerprint(other));
}

TEST(ScheduleCachePersistence, StaleHashRecompilesInsteadOfAliasing)
{
    // Persist a cache for matrix A, restore it, then serve matrix B
    // (same shape, different payload): the content hash must miss and
    // the engine must compile B's schedule, never replay A's.
    Rng rng(61);
    CsrMatrix a = gen::randomSpd(64, 5, rng);
    CsrMatrix b = a;
    for (Value &v : b.vals())
        v *= 3.0;

    AccelParams params = makeParams();
    auto ldA = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    auto tableA = ConfigTable::convert(KernelType::SpMV, ldA);
    Engine cold(params);
    cold.program(&ldA, &tableA);
    cold.prepareSchedule();
    std::stringstream ss;
    ASSERT_TRUE(cold.saveScheduleCache(ss));

    auto ldB = LocallyDenseMatrix::encode(b, 8, LdLayout::Plain);
    auto tableB = ConfigTable::convert(KernelType::SpMV, ldB);
    Engine warm(params);
    ASSERT_TRUE(warm.loadScheduleCache(ss));
    warm.program(&ldB, &tableB);
    DenseVector x(b.cols(), 1.0);
    DenseVector y = warm.runSpmv(x);
    EXPECT_EQ(warm.scheduleCompiles(), 1u)
        << "restored schedule served for a different matrix";

    Engine ref(params);
    ref.program(&ldB, &tableB);
    EXPECT_EQ(y, ref.runSpmv(x));
}

TEST(ScheduleCacheCapacity, ParamBoundsTheCacheAndCountsEvictions)
{
    Rng rng(71);
    CsrMatrix a = gen::randomSpd(48, 4, rng);
    auto ld = LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    std::vector<ConfigTable> tables;
    for (int i = 0; i < 5; ++i)
        tables.push_back(ConfigTable::convert(KernelType::SpMV, ld));

    AccelParams params = makeParams();
    params.scheduleCacheCapacity = 2;
    Engine e(params);
    DenseVector x(a.cols(), 1.0);
    for (auto &t : tables) {
        e.program(&ld, &t);
        e.runSpmv(x);
    }
    EXPECT_EQ(e.scheduleCompiles(), 5u);
    EXPECT_EQ(e.cachedSchedules(), 2u);
    EXPECT_EQ(e.scheduleEvictions(), 3u);

    // The eviction count is a registered stat, visible in the dump.
    EXPECT_NE(statDump(e).find("schedule_evictions"), std::string::npos);
}

TEST(ScheduleCacheCapacity, RestoredPoolSurvivesEviction)
{
    // Capacity 1 with two restored schedules: each program() switch
    // evicts the other's slot, but promotion out of the restored pool
    // happened at most once per table -- after both promotions the
    // evicted schedule is gone and must recompile (correct, counted).
    CsrMatrix a = gen::stencil2d(8, 8);
    AccelParams params = makeParams();
    Accelerator cold(params);
    cold.loadPde(a);
    DenseVector b(a.rows(), 1.0), x0(a.rows(), 0.0);
    cold.spmv(b);
    cold.symgsSweep(b, x0, GsSweep::Forward);
    std::stringstream ss;
    ASSERT_TRUE(cold.engine().saveScheduleCache(ss));

    AccelParams tiny = params;
    tiny.scheduleCacheCapacity = 1;
    Accelerator warm(tiny);
    warm.loadPde(a);
    ASSERT_TRUE(warm.engine().loadScheduleCache(ss));
    EXPECT_EQ(warm.engine().restoredSchedules(), 2u);

    DenseVector xw(a.rows(), 0.0);
    warm.spmv(b);                               // restore #1
    warm.symgsSweep(b, xw, GsSweep::Forward);   // restore #2, evicts #1
    EXPECT_EQ(warm.engine().scheduleCompiles(), 0u);
    warm.spmv(b); // evicted and no longer in the pool: recompile
    EXPECT_EQ(warm.engine().scheduleCompiles(), 1u);
    EXPECT_GE(warm.engine().scheduleEvictions(), 1u);
}
