/**
 * @file
 * CSR algebra tests: add/scale/SpGEMM against dense arithmetic, norms,
 * and algebraic identities.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sparse/algebra.hh"
#include "sparse/coo.hh"
#include "sparse/dense.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

DenseMatrix
denseProduct(const DenseMatrix &a, const DenseMatrix &b)
{
    DenseMatrix c(a.rows(), b.cols(), 0.0);
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index k = 0; k < a.cols(); ++k) {
            for (Index j = 0; j < b.cols(); ++j)
                c(i, j) += a(i, k) * b(k, j);
        }
    }
    return c;
}

TEST(Algebra, AddMatchesDense)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSparse(12, 15, 3, rng);
    CsrMatrix b = gen::randomSparse(12, 15, 4, rng);
    CsrMatrix c = add(a, b, 2.0, -0.5);
    DenseMatrix da = a.toDense(), db = b.toDense();
    for (Index i = 0; i < 12; ++i) {
        for (Index j = 0; j < 15; ++j)
            EXPECT_NEAR(c.at(i, j), 2.0 * da(i, j) - 0.5 * db(i, j),
                        1e-12);
    }
}

TEST(Algebra, AddWithSelfInverseIsZero)
{
    Rng rng(2);
    CsrMatrix a = gen::randomSparse(10, 10, 3, rng);
    CsrMatrix z = add(a, a, 1.0, -1.0);
    EXPECT_EQ(z.nnz(), 0u);
}

TEST(Algebra, ScaleMultipliesValues)
{
    Rng rng(3);
    CsrMatrix a = gen::randomSparse(8, 8, 3, rng);
    CsrMatrix s = scale(a, 3.0);
    for (Index i = 0; i < a.nnz(); ++i)
        EXPECT_DOUBLE_EQ(s.vals()[i], 3.0 * a.vals()[i]);
}

TEST(Algebra, SpgemmMatchesDense)
{
    Rng rng(4);
    CsrMatrix a = gen::randomSparse(9, 13, 4, rng);
    CsrMatrix b = gen::randomSparse(13, 7, 3, rng);
    CsrMatrix c = spgemm(a, b);
    DenseMatrix want = denseProduct(a.toDense(), b.toDense());
    for (Index i = 0; i < 9; ++i) {
        for (Index j = 0; j < 7; ++j)
            EXPECT_NEAR(c.at(i, j), want(i, j), 1e-12);
    }
}

TEST(Algebra, IdentityIsMultiplicativeNeutral)
{
    Rng rng(5);
    CsrMatrix a = gen::randomSparse(11, 11, 4, rng);
    EXPECT_LT(maxAbsDifference(spgemm(a, identity(11)), a), 1e-14);
    EXPECT_LT(maxAbsDifference(spgemm(identity(11), a), a), 1e-14);
}

TEST(Algebra, SpgemmAssociativity)
{
    Rng rng(6);
    CsrMatrix a = gen::randomSparse(6, 8, 3, rng);
    CsrMatrix b = gen::randomSparse(8, 5, 3, rng);
    CsrMatrix c = gen::randomSparse(5, 7, 2, rng);
    CsrMatrix left = spgemm(spgemm(a, b), c);
    CsrMatrix right = spgemm(a, spgemm(b, c));
    EXPECT_LT(maxAbsDifference(left, right), 1e-10);
}

TEST(Algebra, TransposeProductIsSymmetric)
{
    Rng rng(7);
    CsrMatrix a = gen::randomSparse(10, 6, 3, rng);
    CsrMatrix ata = spgemm(a.transposed(), a);
    EXPECT_TRUE(ata.isSymmetric(1e-12));
}

TEST(Algebra, FrobeniusNorm)
{
    CooMatrix coo(2, 2);
    coo.add(0, 0, 3.0);
    coo.add(1, 1, 4.0);
    EXPECT_DOUBLE_EQ(frobeniusNorm(CsrMatrix::fromCoo(coo)), 5.0);
}

TEST(AlgebraDeath, DimensionMismatchPanics)
{
    Rng rng(8);
    CsrMatrix a = gen::randomSparse(4, 5, 2, rng);
    CsrMatrix b = gen::randomSparse(4, 5, 2, rng);
    EXPECT_DEATH(spgemm(a, b), "inner dimension");
}

} // namespace
} // namespace alr
