/**
 * @file
 * Geometric-multigrid tests: hierarchy construction, transfer-operator
 * identities, V-cycle convergence, and MG-PCG iteration reduction --
 * including with the smoother routed through the Alrescha engine.
 */

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "kernels/blas1.hh"
#include "kernels/multigrid.hh"
#include "kernels/pcg.hh"
#include "kernels/smoothers.hh"
#include "kernels/spmv.hh"

namespace alr {
namespace {

TEST(Multigrid, BuildsRequestedHierarchy)
{
    GeometricMultigrid mg(16, 16, 16, 27, 3);
    ASSERT_EQ(mg.numLevels(), 3);
    EXPECT_EQ(mg.level(0).points(), 4096u);
    EXPECT_EQ(mg.level(1).points(), 512u);
    EXPECT_EQ(mg.level(2).points(), 64u);
}

TEST(Multigrid, StopsWhenGridStopsHalving)
{
    GeometricMultigrid mg(4, 4, 4, 7, 6);
    EXPECT_LT(mg.numLevels(), 6);
    EXPECT_GE(mg.numLevels(), 1);
}

TEST(Multigrid, Works2d)
{
    GeometricMultigrid mg(32, 32, 1, 5, 3);
    ASSERT_EQ(mg.numLevels(), 3);
    EXPECT_EQ(mg.level(1).points(), 256u);
}

TEST(Multigrid, RestrictionSamplesEvenPoints)
{
    GeometricMultigrid mg(8, 8, 1, 5, 2);
    DenseVector fine(64);
    for (Index i = 0; i < 64; ++i)
        fine[i] = Value(i);
    DenseVector coarse = mg.restrictToCoarse(0, fine);
    ASSERT_EQ(coarse.size(), 16u);
    // Coarse (x, y) samples fine (2x, 2y).
    EXPECT_DOUBLE_EQ(coarse[0], fine[0]);
    EXPECT_DOUBLE_EQ(coarse[1], fine[2]);
    EXPECT_DOUBLE_EQ(coarse[4], fine[16]);
}

TEST(Multigrid, ProlongThenRestrictIsIdentity)
{
    GeometricMultigrid mg(16, 16, 1, 5, 2);
    DenseVector coarse(64);
    for (Index i = 0; i < 64; ++i)
        coarse[i] = Value(i) * 0.5;
    DenseVector fine(256, 0.0);
    mg.prolongAndAdd(0, coarse, fine);
    EXPECT_EQ(mg.restrictToCoarse(0, fine), coarse);
}

TEST(Multigrid, VcycleIterationConvergesInFewerApplications)
{
    // Stationary iteration z += M(b - A z): the V-cycle preconditioner
    // must need far fewer applications than plain SymGS smoothing to
    // reach tolerance on a Poisson problem, where smooth error kills
    // single-level smoothers.
    GeometricMultigrid mg(32, 32, 1, 5, 3, MgTransfer::FullWeighting);
    const CsrMatrix &a = mg.fineMatrix();
    DenseVector b(a.rows(), 1.0);
    Value normb = norm2(b);

    auto applications = [&](auto &&apply) {
        DenseVector z(a.rows(), 0.0);
        for (int it = 1; it <= 500; ++it) {
            apply(z);
            if (norm2(residual(a, b, z)) < 1e-8 * normb)
                return it;
        }
        return 500;
    };

    int cycles = applications([&](DenseVector &z) {
        DenseVector r = residual(a, b, z);
        DenseVector dz =
            mg.vcycle(r, GeometricMultigrid::hostSymGsSmoother());
        axpy(1.0, dz, z);
    });
    int sweeps = applications([&](DenseVector &z) {
        gaussSeidelSweep(a, b, z, GsSweep::Symmetric);
    });

    EXPECT_LT(cycles, sweeps / 3);
}

TEST(Multigrid, GalerkinCoarseOperatorsAreSymmetric)
{
    GeometricMultigrid mg(16, 16, 16, 27, 3, MgTransfer::FullWeighting);
    for (int l = 0; l < mg.numLevels(); ++l) {
        EXPECT_TRUE(mg.level(l).a.isSymmetric(1e-9)) << "level " << l;
        // Galerkin coarsening keeps a usable diagonal.
        for (Index r = 0; r < mg.level(l).a.rows(); ++r)
            ASSERT_NE(mg.level(l).a.at(r, r), 0.0);
    }
}

TEST(Multigrid, PcgWithVcyclePreconditionerConvergesFaster)
{
    GeometricMultigrid mg(16, 16, 16, 27, 3);
    const CsrMatrix &a = mg.fineMatrix();
    DenseVector xTrue(a.rows(), 1.0);
    DenseVector b = spmv(a, xTrue);

    PcgKernels mgk;
    mgk.spmv = [&](const DenseVector &x) { return spmv(a, x); };
    mgk.precond = [&](const DenseVector &r) {
        return mg.vcycle(r, GeometricMultigrid::hostSymGsSmoother());
    };
    PcgResult mgres = pcgSolveWith(mgk, b, a.rows());
    PcgResult flat = pcgSolve(a, b);

    EXPECT_TRUE(mgres.converged);
    EXPECT_LE(mgres.iterations, flat.iterations);
    EXPECT_LT(maxAbsDiff(mgres.x, xTrue), 1e-6);
}

TEST(Multigrid, AcceleratedSmootherMatchesHostSmoother)
{
    GeometricMultigrid mg(16, 16, 1, 5, 2);

    std::vector<std::unique_ptr<Accelerator>> accel;
    for (int l = 0; l < mg.numLevels(); ++l) {
        accel.push_back(std::make_unique<Accelerator>());
        accel.back()->loadPde(mg.level(l).a);
    }
    MgSmoother onAccel = [&](int l, const MgLevel &, const DenseVector &b,
                             DenseVector &x) {
        accel[size_t(l)]->symgsSweep(b, x, GsSweep::Symmetric);
    };

    DenseVector r(mg.fineMatrix().rows(), 1.0);
    DenseVector zh =
        mg.vcycle(r, GeometricMultigrid::hostSymGsSmoother());
    DenseVector za = mg.vcycle(r, onAccel);
    ASSERT_EQ(zh.size(), za.size());
    for (size_t i = 0; i < zh.size(); ++i)
        EXPECT_NEAR(zh[i], za[i], 1e-9);
}

TEST(MultigridDeath, LevelOutOfRangePanics)
{
    GeometricMultigrid mg(8, 8, 1, 5, 2);
    EXPECT_DEATH(mg.level(5), "out of");
}

} // namespace
} // namespace alr
