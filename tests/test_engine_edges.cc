/**
 * @file
 * Edge-case and robustness tests for the engine plus the trace
 * facility: degenerate sizes, isolated vertices, padding tails,
 * row-skipping equivalence, and table switching.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "common/trace.hh"
#include "kernels/graph.hh"
#include "kernels/spmv.hh"
#include "kernels/symgs.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

DenseVector
randomVector(Index n, uint64_t seed)
{
    Rng rng(seed);
    DenseVector v(n);
    for (auto &e : v)
        e = rng.nextDouble(-1.0, 1.0);
    return v;
}

TEST(EngineEdge, OneByOneMatrix)
{
    CooMatrix coo(1, 1);
    coo.add(0, 0, 4.0);
    CsrMatrix a = CsrMatrix::fromCoo(coo);

    Accelerator acc;
    acc.loadPde(a);
    EXPECT_DOUBLE_EQ(acc.spmv({2.0})[0], 8.0);

    DenseVector b = {12.0}, x = {0.0};
    acc.symgsSweep(b, x, GsSweep::Symmetric);
    EXPECT_DOUBLE_EQ(x[0], 3.0);
}

TEST(EngineEdge, MatrixSmallerThanOmega)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSpd(5, 3, rng); // omega = 8 > n
    Accelerator acc;
    acc.loadPde(a);

    DenseVector x = randomVector(5, 2);
    DenseVector want = spmv(a, x);
    DenseVector got = acc.spmv(x);
    for (Index i = 0; i < 5; ++i)
        EXPECT_NEAR(got[i], want[i], 1e-12);

    DenseVector b = randomVector(5, 3), xa(5, 0.0), xr(5, 0.0);
    acc.symgsSweep(b, xa, GsSweep::Symmetric);
    gaussSeidelSweep(a, b, xr, GsSweep::Symmetric);
    for (Index i = 0; i < 5; ++i)
        EXPECT_NEAR(xa[i], xr[i], 1e-12);
}

TEST(EngineEdge, PaddingTailRowsStayUntouched)
{
    // 13 rows with omega 8: the last block row has 3 padded rows.
    Rng rng(4);
    CsrMatrix a = gen::randomSpd(13, 4, rng);
    Accelerator acc;
    acc.loadPde(a);
    DenseVector x = randomVector(13, 5);
    DenseVector got = acc.spmv(x);
    ASSERT_EQ(got.size(), 13u);
    DenseVector want = spmv(a, x);
    for (Index i = 0; i < 13; ++i)
        EXPECT_NEAR(got[i], want[i], 1e-12);
}

TEST(EngineEdge, GraphWithIsolatedVertices)
{
    // Vertices 3 and 4 have no edges at all.
    CooMatrix coo(5, 5);
    coo.add(0, 1, 1.0);
    coo.add(1, 2, 1.0);
    CsrMatrix g = CsrMatrix::fromCoo(coo);

    Accelerator acc;
    acc.loadGraph(g);
    GraphResult bfs = acc.bfs(0);
    EXPECT_DOUBLE_EQ(bfs.values[2], 2.0);
    EXPECT_TRUE(std::isinf(bfs.values[3]));
    EXPECT_TRUE(std::isinf(bfs.values[4]));

    GraphResult pr = acc.pagerank();
    Value total = 0.0;
    for (Value v : pr.values)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(EngineEdge, SourceOnlyGraph)
{
    // All edges out of vertex 0; relaxation converges in one round + fix.
    CooMatrix coo(4, 4);
    for (Index v = 1; v < 4; ++v)
        coo.add(0, v, Value(v));
    CsrMatrix g = CsrMatrix::fromCoo(coo);
    Accelerator acc;
    acc.loadGraph(g);
    GraphResult res = acc.sssp(0);
    EXPECT_DOUBLE_EQ(res.values[3], 3.0);
    EXPECT_LE(res.rounds, 3);
}

TEST(EngineEdge, RowSkippingIsFunctionallyInvisible)
{
    Rng rng(6);
    CsrMatrix g = gen::rmat(7, 4, rng);

    AccelParams dense;
    dense.skipEmptyBlockRows = false;
    AccelParams skip;
    skip.skipEmptyBlockRows = true;

    Accelerator a1(dense), a2(skip);
    a1.loadGraph(g);
    a2.loadGraph(g);
    EXPECT_EQ(a1.bfs(0).values, a2.bfs(0).values);

    // Skipping must strictly reduce traffic on a sparse-block graph.
    a1.resetStats();
    a2.resetStats();
    a1.spmv(DenseVector(g.cols(), 1.0));
    a2.spmv(DenseVector(g.cols(), 1.0));
    EXPECT_LT(a2.engine().memory().bytesStreamed(),
              a1.engine().memory().bytesStreamed());
    EXPECT_LE(a2.engine().totalCycles(), a1.engine().totalCycles());
}

TEST(EngineEdge, ReprogrammingBetweenKernelsIsClean)
{
    Rng rng(7);
    CsrMatrix a = gen::banded(40, 4, 0.8, rng);
    CsrMatrix g = gen::rmat(6, 4, rng);

    Accelerator acc;
    acc.loadPde(a);
    DenseVector b(40, 1.0), x(40, 0.0);
    acc.symgsSweep(b, x, GsSweep::Forward);

    acc.loadGraph(g);
    GraphResult res = acc.bfs(0);
    EXPECT_EQ(res.values, bfsReference(g, 0));

    acc.loadPde(a);
    DenseVector x2(40, 0.0), xr(40, 0.0);
    acc.symgsSweep(b, x2, GsSweep::Forward);
    gaussSeidelSweep(a, b, xr, GsSweep::Forward);
    for (Index i = 0; i < 40; ++i)
        EXPECT_NEAR(x2[i], xr[i], 1e-12);
}

TEST(Trace, CapturesEngineEvents)
{
    std::ostringstream os;
    trace::setSink(&os);
    ASSERT_TRUE(trace::enabled());

    Rng rng(8);
    CsrMatrix a = gen::banded(32, 4, 0.8, rng);
    // Per-path events (each rcu reconfigure) come from the interpreter;
    // the scheduled path precomputes those transitions.
    AccelParams params;
    params.useSchedule = false;
    Accelerator acc(params);
    acc.loadPde(a);
    DenseVector b(32, 1.0), x(32, 0.0);
    acc.symgsSweep(b, x, GsSweep::Forward);
    acc.spmv(x);
    trace::setSink(nullptr);

    std::string log = os.str();
    EXPECT_NE(log.find("rcu: reconfigure -> GEMV"), std::string::npos);
    EXPECT_NE(log.find("rcu: reconfigure -> D-SymGS"),
              std::string::npos);
    EXPECT_NE(log.find("symgs(fwd):"), std::string::npos);
    EXPECT_NE(log.find("spmv:"), std::string::npos);
}

TEST(Trace, CapturesScheduledRunSummaries)
{
    std::ostringstream os;
    trace::setSink(&os);
    ASSERT_TRUE(trace::enabled());

    Rng rng(8);
    CsrMatrix a = gen::banded(32, 4, 0.8, rng);
    Accelerator acc; // useSchedule defaults to true
    acc.loadPde(a);
    DenseVector b(32, 1.0), x(32, 0.0);
    acc.symgsSweep(b, x, GsSweep::Forward);
    acc.spmv(x);
    trace::setSink(nullptr);

    std::string log = os.str();
    EXPECT_NE(log.find("symgs(sched):"), std::string::npos);
    EXPECT_NE(log.find("spmv(sched):"), std::string::npos);
}

TEST(Trace, SilentWhenDisabled)
{
    trace::setSink(nullptr);
    EXPECT_FALSE(trace::enabled());
    ALR_TRACE("this must not crash %d", 1);
}

TEST(EngineEdge, BackwardSweepOnPaddedMatrix)
{
    Rng rng(9);
    CsrMatrix a = gen::randomSpd(19, 4, rng);
    Accelerator acc;
    acc.loadPde(a);
    DenseVector b = randomVector(19, 10);
    DenseVector xa = randomVector(19, 11);
    DenseVector xr = xa;
    acc.symgsSweep(b, xa, GsSweep::Backward);
    gaussSeidelSweep(a, b, xr, GsSweep::Backward);
    for (Index i = 0; i < 19; ++i)
        EXPECT_NEAR(xa[i], xr[i], 1e-11);
}

TEST(EngineEdge, RepeatedSweepsConvergeToSolution)
{
    Rng rng(12);
    CsrMatrix a = gen::banded(48, 3, 0.8, rng);
    DenseVector xTrue = randomVector(48, 13);
    DenseVector b = spmv(a, xTrue);

    Accelerator acc;
    acc.loadPde(a);
    DenseVector x(48, 0.0);
    for (int it = 0; it < 60; ++it)
        acc.symgsSweep(b, x, GsSweep::Symmetric);
    for (Index i = 0; i < 48; ++i)
        EXPECT_NEAR(x[i], xTrue[i], 1e-6);
}

TEST(EngineEdge, FrontierSkippingIsFunctionallyInvisible)
{
    Rng rng(20);
    CsrMatrix g = gen::roadGrid(14, 12, 0.02, rng);

    AccelParams dense;
    dense.frontierSkipping = false;
    AccelParams front;
    front.frontierSkipping = true;

    Accelerator a1(dense), a2(front);
    a1.loadGraph(g);
    a2.loadGraph(g);
    EXPECT_EQ(a1.bfs(3).values, a2.bfs(3).values);
    EXPECT_EQ(a1.sssp(3).values, a2.sssp(3).values);
    EXPECT_EQ(a1.connectedComponents().values,
              a2.connectedComponents().values);
}

TEST(EngineEdge, FrontierSkippingCutsTrafficOnHighDiameterGraphs)
{
    Rng rng(21);
    CsrMatrix g = gen::roadGrid(24, 20, 0.0, rng);

    AccelParams dense;
    dense.frontierSkipping = false;
    AccelParams front;
    front.frontierSkipping = true;

    Accelerator a1(dense), a2(front);
    a1.loadGraph(g);
    a2.loadGraph(g);
    a1.resetStats();
    a1.bfs(0);
    a2.resetStats();
    a2.bfs(0);

    EXPECT_LT(a2.engine().memory().bytesStreamed(),
              0.5 * a1.engine().memory().bytesStreamed());
    EXPECT_LT(a2.engine().totalCycles(), a1.engine().totalCycles());
}

} // namespace
} // namespace alr
