/**
 * @file
 * Observability tests: Distribution::merge, the hierarchical JSON stats
 * export, the StatSnapshotter, the cycle-attributed timeline (Chrome
 * trace export), the reconfiguration-overlap fraction, and the trace
 * sink's long-line / concurrency behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alrescha/accelerator.hh"
#include "alrescha/multi.hh"
#include "common/stats.hh"
#include "common/timeline.hh"
#include "common/trace.hh"
#include "datasets/suites.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

/**
 * Minimal recursive-descent JSON syntax validator, enough to assert the
 * exporters emit well-formed documents without an external parser (the
 * CI check_timeline.py does the full json.load cross-check).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text)
        : _p(text.c_str()), _end(text.c_str() + text.size())
    {
    }

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return _p == _end;
    }

  private:
    void skipWs()
    {
        while (_p < _end && std::isspace(static_cast<unsigned char>(*_p)))
            ++_p;
    }

    bool literal(const char *s)
    {
        const char *q = _p;
        for (; *s; ++s, ++q) {
            if (q >= _end || *q != *s)
                return false;
        }
        _p = q;
        return true;
    }

    bool string()
    {
        if (_p >= _end || *_p != '"')
            return false;
        ++_p;
        while (_p < _end && *_p != '"') {
            if (*_p == '\\') {
                ++_p;
                if (_p >= _end)
                    return false;
            }
            ++_p;
        }
        if (_p >= _end)
            return false;
        ++_p; // closing quote
        return true;
    }

    bool number()
    {
        const char *start = _p;
        if (_p < _end && (*_p == '-' || *_p == '+'))
            ++_p;
        bool digits = false;
        while (_p < _end &&
               (std::isdigit(static_cast<unsigned char>(*_p)) ||
                *_p == '.' || *_p == 'e' || *_p == 'E' || *_p == '-' ||
                *_p == '+')) {
            digits = digits ||
                     std::isdigit(static_cast<unsigned char>(*_p));
            ++_p;
        }
        return digits && _p > start;
    }

    bool value()
    {
        skipWs();
        if (_p >= _end)
            return false;
        switch (*_p) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++_p; // '{'
        skipWs();
        if (_p < _end && *_p == '}') {
            ++_p;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (_p >= _end || *_p != ':')
                return false;
            ++_p;
            if (!value())
                return false;
            skipWs();
            if (_p < _end && *_p == ',') {
                ++_p;
                continue;
            }
            break;
        }
        if (_p >= _end || *_p != '}')
            return false;
        ++_p;
        return true;
    }

    bool array()
    {
        ++_p; // '['
        skipWs();
        if (_p < _end && *_p == ']') {
            ++_p;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (_p < _end && *_p == ',') {
                ++_p;
                continue;
            }
            break;
        }
        if (_p >= _end || *_p != ']')
            return false;
        ++_p;
        return true;
    }

    const char *_p;
    const char *_end;
};

bool
jsonValid(const std::string &text)
{
    return JsonChecker(text).valid();
}

} // namespace

// ---------------------------------------------------------------------
// Distribution::merge

TEST(DistributionMerge, MatchesSamplingEverythingIntoOne)
{
    stats::Distribution d1, d2, all;
    for (double v : {1.0, 2.0, 3.0}) {
        d1.sample(v);
        all.sample(v);
    }
    for (double v : {10.0, 20.0}) {
        d2.sample(v);
        all.sample(v);
    }

    d1.merge(d2);
    EXPECT_EQ(d1.count(), all.count());
    EXPECT_DOUBLE_EQ(d1.sum(), all.sum());
    EXPECT_DOUBLE_EQ(d1.min(), all.min());
    EXPECT_DOUBLE_EQ(d1.max(), all.max());
    EXPECT_DOUBLE_EQ(d1.mean(), all.mean());
    EXPECT_DOUBLE_EQ(d1.variance(), all.variance());
    for (size_t b = 0; b < stats::Distribution::kBuckets; ++b)
        EXPECT_EQ(d1.buckets()[b], all.buckets()[b]) << "bucket " << b;
}

TEST(DistributionMerge, EmptyCasesAreNeutral)
{
    stats::Distribution filled, empty;
    filled.sample(4.0);
    filled.sample(8.0);

    stats::Distribution copy = filled;
    copy.merge(empty); // merging empty changes nothing
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_DOUBLE_EQ(copy.sum(), 12.0);
    EXPECT_DOUBLE_EQ(copy.min(), 4.0);
    EXPECT_DOUBLE_EQ(copy.max(), 8.0);

    stats::Distribution target; // merging into empty copies
    target.merge(filled);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.min(), 4.0);
    EXPECT_DOUBLE_EQ(target.max(), 8.0);
    EXPECT_DOUBLE_EQ(target.variance(), filled.variance());
}

TEST(DistributionMerge, MinMaxAcrossDisjointRanges)
{
    // Extrema must come from the right operand when it covers a wider
    // range (regression for a naive min/max copy).
    stats::Distribution lo, hi;
    lo.sample(5.0);
    hi.sample(1.0);
    hi.sample(100.0);
    lo.merge(hi);
    EXPECT_DOUBLE_EQ(lo.min(), 1.0);
    EXPECT_DOUBLE_EQ(lo.max(), 100.0);
    EXPECT_EQ(lo.count(), 3u);
}

TEST(Distribution, PercentileApproximatesFromBuckets)
{
    stats::Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(double(i));
    // Log2 buckets are exact only at powers of two, but every estimate
    // stays within the sampled range and is monotone in p.
    double p50 = d.percentile(50.0);
    double p90 = d.percentile(90.0);
    double p99 = d.percentile(99.0);
    EXPECT_GE(p50, d.min());
    EXPECT_LE(p99, d.max());
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // 50% of 1..100 falls at 50; the enclosing bucket is [32, 64).
    EXPECT_GE(p50, 32.0);
    EXPECT_LE(p50, 64.0);
}

TEST(Distribution, PercentileEdgeCases)
{
    stats::Distribution empty;
    EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(100.0), 0.0);

    // A single sample is every percentile, including one that falls
    // mid-bucket (6 lives in [4, 8), whose upper edge is 8).
    stats::Distribution one;
    one.sample(6.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.0), 6.0);
    EXPECT_DOUBLE_EQ(one.percentile(50.0), 6.0);
    EXPECT_DOUBLE_EQ(one.percentile(100.0), 6.0);

    // The endpoints report the exact extrema, not bucket edges: with
    // samples {0.5, 100}, p=0 must be 0.5 (bucket 0's upper edge is 1)
    // and p=100 must be 100 (its bucket's upper edge is 128).  Out-of-
    // range p clamps to the endpoints.
    stats::Distribution d;
    d.sample(0.5);
    d.sample(100.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(d.percentile(-5.0), 0.5);
    EXPECT_DOUBLE_EQ(d.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(250.0), 100.0);
}

// ---------------------------------------------------------------------
// Hierarchical stats + JSON export

TEST(StatGroupJson, SchemaIsValidAndNamesRoundTrip)
{
    stats::StatGroup root("root");
    stats::Scalar s;
    s.add(7.0);
    stats::Distribution d;
    d.sample(3.0);
    d.sample(5.0);
    root.registerScalar("hits", &s, "a \"quoted\" desc");
    root.registerDistribution("lat", &d, "latencies");
    root.registerFormula("twice", [&] { return 2.0 * s.value(); },
                         "derived");

    stats::StatGroup child("sub");
    stats::Scalar cs;
    cs.add(1.0);
    child.registerScalar("n", &cs, "child scalar");
    root.addChild(&child);

    std::ostringstream os;
    root.dumpJson(os);
    std::string doc = os.str();
    EXPECT_TRUE(jsonValid(doc)) << doc;
    EXPECT_NE(doc.find("\"group\": \"root\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\": \"scalar\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\": \"formula\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\": \"distribution\""), std::string::npos);
    EXPECT_NE(doc.find("\"children\""), std::string::npos);

    // Every advertised name resolves through lookup().
    for (const std::string &name : root.statNames()) {
        EXPECT_TRUE(root.has(name)) << name;
        (void)root.lookup(name);
    }
    EXPECT_DOUBLE_EQ(root.lookup("sub.n"), 1.0);
    EXPECT_DOUBLE_EQ(root.lookup("twice"), 14.0);
}

TEST(StatGroupJson, EngineGroupExportsValidJson)
{
    Accelerator acc;
    acc.loadSpmvOnly(gen::stencil2d(16, 16, 5));
    acc.spmv(DenseVector(256, 1.0));

    std::ostringstream os;
    acc.engine().statGroup().dumpJson(os);
    EXPECT_TRUE(jsonValid(os.str()));
    // Component groups surface as children with their stats intact.
    EXPECT_TRUE(acc.engine().statGroup().has("mem.bytes_streamed"));
    EXPECT_TRUE(acc.engine().statGroup().has("rcu.reconfig_hidden_frac"));
    EXPECT_GT(acc.engine().statGroup().lookup("mem.bytes_streamed"), 0.0);
}

TEST(StatSnapshotter, SamplesOnIntervalBoundaries)
{
    stats::StatGroup g("g");
    stats::Scalar s;
    g.registerScalar("x", &s, "test scalar");

    stats::StatSnapshotter snap(g, 100);
    snap.maybeSample(50); // before the first boundary: no row
    EXPECT_EQ(snap.rows(), 0u);
    s.add(1.0);
    snap.maybeSample(150); // crossed 100
    EXPECT_EQ(snap.rows(), 1u);
    snap.maybeSample(160); // same interval: no new row
    EXPECT_EQ(snap.rows(), 1u);
    s.add(1.0);
    snap.maybeSample(350); // crossed 200 (and 300): one row
    EXPECT_EQ(snap.rows(), 2u);
    snap.sampleNow(400); // unconditional
    EXPECT_EQ(snap.rows(), 3u);

    ASSERT_EQ(snap.names().size(), 1u);
    EXPECT_EQ(snap.names()[0], "x");

    std::ostringstream js;
    snap.dumpJson(js);
    EXPECT_TRUE(jsonValid(js.str())) << js.str();
    EXPECT_NE(js.str().find("\"interval\": 100"), std::string::npos);

    std::ostringstream csv;
    snap.dumpCsv(csv);
    EXPECT_EQ(csv.str().substr(0, 8), "cycle,x\n");
}

// ---------------------------------------------------------------------
// Reconfiguration overlap (the paper's §4.4 claim as a number)

TEST(ReconfigHidden, GemvOnlySpmvIsFullyHidden)
{
    // A pure SpMV run never switches away from the GEMV path, so the
    // fraction is (vacuously) 1.0.
    Accelerator acc;
    acc.loadSpmvOnly(gen::stencil2d(24, 24, 5));
    acc.spmv(DenseVector(24 * 24, 1.0));
    EXPECT_DOUBLE_EQ(acc.engine().rcu().reconfigHiddenFraction(), 1.0);
    EXPECT_GT(acc.engine().rcu().reconfigurations(), 0.0);
}

TEST(ReconfigHidden, HandComputedFractionWithSlowSwitch)
{
    // Hand-computable overlap: with omega = 8 the drain is
    // aluLatency + treeDepth * reSumLatency = 3 + 3*3 = 12 cycles.
    // configCycles = 20 exposes 20 - 12 = 8 cycles on EVERY switch, so
    // the hidden fraction is exactly 12/20 = 0.6 regardless of how
    // many switches the run performs.
    AccelParams params;
    params.configCycles = 20;
    ASSERT_EQ(params.drainCycles(), 12);

    for (bool useSchedule : {false, true}) {
        params.useSchedule = useSchedule;
        Accelerator acc(params);
        acc.loadPde(gen::stencil2d(16, 16, 5));
        DenseVector b(256, 1.0), x(256, 0.0);
        acc.symgsSweep(b, x, GsSweep::Symmetric);
        // The sweep must actually switch paths for the test to bite.
        ASSERT_GT(acc.engine().rcu().reconfigurations(), 1.0);
        EXPECT_DOUBLE_EQ(acc.engine().rcu().reconfigHiddenFraction(), 0.6)
            << "useSchedule=" << useSchedule;
        EXPECT_DOUBLE_EQ(
            acc.engine().statGroup().lookup("rcu.reconfig_hidden_frac"),
            0.6);
    }
}

TEST(ReconfigHidden, DefaultConfigFullyOverlaps)
{
    // Table 5's configCycles = 8 < drain = 12: nothing is exposed.
    Accelerator acc;
    acc.loadPde(gen::stencil2d(16, 16, 5));
    DenseVector b(256, 1.0), x(256, 0.0);
    acc.symgsSweep(b, x, GsSweep::Symmetric);
    ASSERT_GT(acc.engine().rcu().reconfigurations(), 1.0);
    EXPECT_DOUBLE_EQ(acc.engine().rcu().reconfigHiddenFraction(), 1.0);
}

// ---------------------------------------------------------------------
// Utilization report vs Fig 16's modeled numbers

TEST(UtilizationReport, SequentialSplitAgreesWithFig16Metric)
{
    // Fig 16 reports engine().sequentialOpFraction() after a symmetric
    // sweep; --report must surface the same number, and it must equal
    // the seq/(seq+par) FLOP split the engine counters define.
    auto suite = scientificSuite();
    int checked = 0;
    for (const char *name : {"em-sphere", "thermal-grid"}) {
        const Dataset &d = findDataset(suite, name);
        Accelerator acc;
        acc.loadPde(d.matrix);
        acc.resetStats();
        DenseVector b(d.matrix.rows(), 1.0), x(d.matrix.rows(), 0.0);
        acc.symgsSweep(b, x, GsSweep::Symmetric);

        double fig16 = acc.engine().sequentialOpFraction();
        UtilizationReport u = acc.utilization();
        EXPECT_DOUBLE_EQ(u.sequentialOpFraction, fig16) << name;
        double seq = acc.engine().seqFlops();
        double par = acc.engine().parFlops();
        ASSERT_GT(seq + par, 0.0) << name;
        EXPECT_DOUBLE_EQ(fig16, seq / (seq + par)) << name;
        // A SymGS sweep has real sequential work but is not all-serial.
        EXPECT_GT(u.sequentialOpFraction, 0.0) << name;
        EXPECT_LT(u.sequentialOpFraction, 1.0) << name;
        ++checked;
    }
    EXPECT_EQ(checked, 2);
}

TEST(UtilizationReport, OccupanciesAndRooflineAreConsistent)
{
    Accelerator acc;
    acc.loadSpmvOnly(gen::stencil2d(32, 32, 5));
    acc.spmv(DenseVector(1024, 1.0));
    UtilizationReport u = acc.utilization();

    EXPECT_GT(u.cycles, 0u);
    EXPECT_GT(u.aluOccupancy, 0.0);
    EXPECT_LE(u.aluOccupancy, 1.0);
    EXPECT_GT(u.treeOccupancy, 0.0);
    EXPECT_GT(u.cacheHitRate, 0.0);
    EXPECT_LE(u.cacheHitRate, 1.0);
    EXPECT_GT(u.flops, 0.0);
    EXPECT_GT(u.dramBytes, 0.0);
    EXPECT_DOUBLE_EQ(u.arithmeticIntensity, u.flops / u.dramBytes);
    // Achieved throughput cannot beat the roofline at this intensity.
    EXPECT_LE(u.achievedGflops, u.attainableGflops * (1.0 + 1e-9));
    EXPECT_LE(u.attainableGflops, u.peakGflops);
    // SpMV is memory bound: the ceiling here is the bandwidth slope.
    EXPECT_LT(u.attainableGflops, u.peakGflops);
}

// ---------------------------------------------------------------------
// Multi-engine merged readout

TEST(MultiMerge, RunCyclesDistributionCoversAllEngines)
{
    MultiParams mp;
    mp.numEngines = 3;
    MultiAccelerator multi(mp);
    multi.loadSpmv(gen::stencil2d(32, 32, 5));

    DenseVector x(1024, 1.0);
    multi.spmv(x);
    multi.spmv(x);

    MultiReport r = multi.report();
    // Every engine with a non-empty slice ran twice; the merged
    // distribution sees each run exactly once.
    EXPECT_EQ(r.runCycles.count(), 6u);
    EXPECT_GT(r.runCycles.min(), 0.0);
    EXPECT_GE(r.runCycles.max(), r.runCycles.min());
    // The slowest engine's accumulated cycles bounds any single run.
    EXPECT_LE(uint64_t(r.runCycles.max()), r.computeCycles);

    // resetStats clears the per-engine distributions too.
    multi.resetStats();
    EXPECT_EQ(multi.report().runCycles.count(), 0u);
}

// ---------------------------------------------------------------------
// Timeline recorder + Chrome trace export

TEST(Timeline, SpansStayWithinRunCycleBounds)
{
    timeline::reset();
    timeline::setEnabled(true);
    Accelerator acc;
    acc.loadPde(gen::stencil2d(16, 16, 5));
    DenseVector b(256, 1.0), x(256, 0.0);
    acc.symgsSweep(b, x, GsSweep::Symmetric);
    acc.spmv(x);
    timeline::setEnabled(false);

    uint64_t total = acc.engine().totalCycles();
    auto evs = timeline::events();
    ASSERT_FALSE(evs.empty());
    EXPECT_EQ(timeline::dropped(), 0u);

    bool sawDataPath = false, sawMemory = false, sawFcu = false,
         sawCounter = false, sawChain = false;
    for (const auto &ev : evs) {
        ASSERT_NE(ev.name, nullptr);
        if (ev.pid != timeline::kPidModeled)
            continue;
        EXPECT_LE(ev.ts, total);
        if (ev.kind == timeline::Event::Kind::Span) {
            EXPECT_LE(ev.ts + ev.dur, total);
        }
        sawDataPath |= ev.tid == timeline::kTidDataPath;
        sawMemory |= ev.tid == timeline::kTidMemory;
        sawFcu |= ev.tid == timeline::kTidFcu;
        sawChain |= ev.tid == timeline::kTidChain;
        sawCounter |= ev.kind == timeline::Event::Kind::Counter;
    }
    EXPECT_TRUE(sawDataPath);
    EXPECT_TRUE(sawMemory);
    EXPECT_TRUE(sawFcu);
    EXPECT_TRUE(sawChain); // the SymGS sweep serializes D-SymGS chains
    EXPECT_TRUE(sawCounter);
}

TEST(Timeline, ChromeTraceExportIsValidJson)
{
    timeline::reset();
    timeline::setEnabled(true);
    Accelerator acc;
    acc.loadSpmvOnly(gen::stencil2d(16, 16, 5));
    acc.spmv(DenseVector(256, 1.0));
    timeline::setEnabled(false);

    std::ostringstream os;
    timeline::exportChromeTrace(os);
    std::string doc = os.str();
    EXPECT_TRUE(jsonValid(doc)) << doc.substr(0, 400);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(doc.find("\"ts\": "), std::string::npos);
    EXPECT_NE(doc.find("\"dur\": "), std::string::npos);
    EXPECT_NE(doc.find("modeled (1us = 1 cycle)"), std::string::npos);
}

TEST(Timeline, DisabledRecorderKeepsResultsIdentical)
{
    // The recorder only observes timestamps the engine already
    // computes: cycles and results match with it on or off.
    auto runOnce = [](bool on) {
        timeline::reset();
        timeline::setEnabled(on);
        Accelerator acc;
        acc.loadPde(gen::stencil2d(16, 16, 5));
        DenseVector b(256, 1.0), x(256, 0.0);
        acc.symgsSweep(b, x, GsSweep::Symmetric);
        timeline::setEnabled(false);
        return std::make_pair(acc.engine().totalCycles(), x);
    };
    auto off = runOnce(false);
    auto on = runOnce(true);
    EXPECT_EQ(off.first, on.first);
    EXPECT_EQ(off.second, on.second);
}

TEST(Timeline, RingOverwritesOldestAndCountsDrops)
{
    timeline::setCapacity(8);
    timeline::reset();
    timeline::setEnabled(true);
    for (uint64_t i = 0; i < 20; ++i)
        timeline::span("tick", "test", timeline::kTidDataPath, i, 1);
    timeline::setEnabled(false);

    auto evs = timeline::events();
    EXPECT_EQ(evs.size(), 8u);
    EXPECT_EQ(timeline::dropped(), 12u);
    // The survivors are the newest events, oldest first.
    EXPECT_EQ(evs.front().ts, 12u);
    EXPECT_EQ(evs.back().ts, 19u);

    timeline::setCapacity(size_t(1) << 18); // restore the default
}

TEST(Timeline, ParallelEngineWorkersRecordSafely)
{
    timeline::reset();
    timeline::setEnabled(true);
    AccelParams params;
    params.engineThreads = 3;
    Accelerator acc(params);
    acc.loadSpmvOnly(gen::stencil2d(32, 32, 5));
    DenseVector x(1024, 1.0);
    for (int i = 0; i < 4; ++i)
        acc.spmv(x);
    timeline::setEnabled(false);

    // Host spans land on per-thread tracks; per track, spans close in
    // wall-clock order, so end timestamps are monotone (a torn or
    // corrupted record would break this).
    std::map<uint32_t, uint64_t> lastEnd;
    size_t hostSpans = 0;
    for (const auto &ev : timeline::events()) {
        ASSERT_NE(ev.name, nullptr);
        if (ev.pid != timeline::kPidHost)
            continue;
        ASSERT_EQ(ev.kind, timeline::Event::Kind::Span);
        EXPECT_GE(ev.tid, 1u);
        uint64_t end = ev.ts + ev.dur;
        auto it = lastEnd.find(ev.tid);
        if (it != lastEnd.end()) {
            EXPECT_GE(end, it->second) << "tid " << ev.tid;
        }
        lastEnd[ev.tid] = end;
        ++hostSpans;
    }
    EXPECT_GE(hostSpans, 4u); // at least one per run
}

// ---------------------------------------------------------------------
// Trace sink: long lines and concurrent emitters

TEST(TraceSink, LinesLongerThanTheStackBufferSurviveIntact)
{
    std::ostringstream sink;
    trace::setSink(&sink);
    std::string payload(5000, 'y');
    payload[0] = 'A';
    payload[4999] = 'Z';
    trace::emit("long: %s", payload.c_str());
    trace::setSink(nullptr);

    std::string out = sink.str();
    EXPECT_EQ(out, "long: " + payload + "\n");
}

TEST(TraceSink, ConcurrentEmittersProduceNoTornLines)
{
    std::ostringstream sink;
    trace::setSink(&sink);
    constexpr int kThreads = 4;
    constexpr int kLines = 200;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < kLines; ++i)
                trace::emit("t%d line%d end", t, i);
        });
    }
    for (auto &w : workers)
        w.join();
    trace::setSink(nullptr);

    std::istringstream in(sink.str());
    std::string line;
    int count = 0;
    std::vector<std::vector<bool>> seen(
        kThreads, std::vector<bool>(kLines, false));
    while (std::getline(in, line)) {
        int t = -1, i = -1;
        ASSERT_EQ(std::sscanf(line.c_str(), "t%d line%d end", &t, &i), 2)
            << "torn line: '" << line << "'";
        ASSERT_TRUE(t >= 0 && t < kThreads && i >= 0 && i < kLines)
            << line;
        EXPECT_FALSE(seen[size_t(t)][size_t(i)]) << line;
        seen[size_t(t)][size_t(i)] = true;
        ++count;
    }
    EXPECT_EQ(count, kThreads * kLines);
}
