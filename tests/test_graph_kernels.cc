/**
 * @file
 * Graph reference-kernel tests: classical vs linear-algebra formulations
 * agree, and both satisfy the algorithms' invariants.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "kernels/graph.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

void
expectSame(const DenseVector &a, const DenseVector &b, Value tol)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::isinf(a[i])) {
            EXPECT_TRUE(std::isinf(b[i])) << i;
        } else {
            EXPECT_NEAR(a[i], b[i], tol) << i;
        }
    }
}

CsrMatrix
smallDigraph()
{
    // A -> B -> C -> D with a shortcut A -> C and weights.
    CooMatrix coo(4, 4);
    coo.add(0, 1, 1.0);
    coo.add(1, 2, 2.0);
    coo.add(2, 3, 1.0);
    coo.add(0, 2, 5.0);
    return CsrMatrix::fromCoo(coo);
}

TEST(Bfs, HandComputedDistances)
{
    DenseVector d = bfsReference(smallDigraph(), 0);
    EXPECT_DOUBLE_EQ(d[0], 0.0);
    EXPECT_DOUBLE_EQ(d[1], 1.0);
    EXPECT_DOUBLE_EQ(d[2], 1.0); // via shortcut
    EXPECT_DOUBLE_EQ(d[3], 2.0);
}

TEST(Bfs, UnreachableStaysInfinite)
{
    CooMatrix coo(3, 3);
    coo.add(0, 1, 1.0);
    CsrMatrix g = CsrMatrix::fromCoo(coo);
    DenseVector d = bfsReference(g, 0);
    EXPECT_TRUE(std::isinf(d[2]));
}

TEST(Bfs, LinAlgMatchesClassicalOnRandomGraphs)
{
    for (uint64_t seed = 0; seed < 6; ++seed) {
        Rng rng(seed);
        CsrMatrix g = gen::rmat(8, 4, rng);
        int rounds = 0;
        expectSame(bfsLinAlg(g, 0, &rounds), bfsReference(g, 0), 0.0);
        EXPECT_GE(rounds, 1);
    }
}

TEST(Sssp, HandComputedShortestPaths)
{
    DenseVector d = ssspReference(smallDigraph(), 0);
    EXPECT_DOUBLE_EQ(d[0], 0.0);
    EXPECT_DOUBLE_EQ(d[1], 1.0);
    EXPECT_DOUBLE_EQ(d[2], 3.0); // 1 + 2 beats the 5.0 shortcut
    EXPECT_DOUBLE_EQ(d[3], 4.0);
}

TEST(Sssp, BellmanFordMatchesDijkstra)
{
    for (uint64_t seed = 10; seed < 16; ++seed) {
        Rng rng(seed);
        CsrMatrix g = gen::roadGrid(10, 9, 0.1, rng);
        expectSame(ssspLinAlg(g, 3), ssspReference(g, 3), 1e-12);
    }
}

TEST(Sssp, TriangleInequalityHolds)
{
    Rng rng(20);
    CsrMatrix g = gen::rmat(7, 6, rng);
    DenseVector d = ssspReference(g, 0);
    for (Index u = 0; u < g.rows(); ++u) {
        if (std::isinf(d[u]))
            continue;
        for (Index k = g.rowPtr()[u]; k < g.rowPtr()[u + 1]; ++k) {
            Index v = g.colIdx()[k];
            EXPECT_LE(d[v], d[u] + g.vals()[k] + 1e-12);
        }
    }
}

TEST(PageRank, SumsToOne)
{
    Rng rng(30);
    CsrMatrix g = gen::powerLawGraph(300, 5, 0.9, rng);
    DenseVector r = pagerank(g);
    Value total = 0.0;
    for (Value v : r)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(PageRank, UniformOnSymmetricCycle)
{
    // A directed ring: perfectly symmetric, so all ranks equal.
    CooMatrix coo(6, 6);
    for (Index i = 0; i < 6; ++i)
        coo.add(i, (i + 1) % 6, 1.0);
    CsrMatrix g = CsrMatrix::fromCoo(coo);
    DenseVector r = pagerank(g);
    for (Value v : r)
        EXPECT_NEAR(v, 1.0 / 6.0, 1e-9);
}

TEST(PageRank, SinkAttractsRank)
{
    // Star into vertex 0: it must outrank the leaves.
    CooMatrix coo(5, 5);
    for (Index i = 1; i < 5; ++i)
        coo.add(i, 0, 1.0);
    coo.add(0, 1, 1.0); // keep 0 non-dangling
    CsrMatrix g = CsrMatrix::fromCoo(coo);
    DenseVector r = pagerank(g);
    for (Index i = 2; i < 5; ++i)
        EXPECT_GT(r[0], r[i]);
}

TEST(PageRank, DanglingMassIsRedistributed)
{
    // Vertex 1 is dangling; ranks must still sum to 1.
    CooMatrix coo(3, 3);
    coo.add(0, 1, 1.0);
    coo.add(2, 0, 1.0);
    CsrMatrix g = CsrMatrix::fromCoo(coo);
    DenseVector r = pagerank(g);
    Value total = 0.0;
    for (Value v : r)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(OutDegrees, CountsStoredEdges)
{
    CsrMatrix g = smallDigraph();
    auto deg = outDegrees(g);
    EXPECT_EQ(deg[0], 2u);
    EXPECT_EQ(deg[1], 1u);
    EXPECT_EQ(deg[3], 0u);
}

} // namespace
} // namespace alr
