/**
 * @file
 * Schedule-compiler equivalence properties (ISSUE 2): for every
 * schedulable kernel the compiled ExecSchedule must reproduce the
 * interpreter bit for bit -- results, cycle counts, and the entire
 * serialized stat dump -- across omegas, matrices, repeated runs
 * (cross-run cache and switch state), and functional-pass thread
 * counts.  Plus unit tests for the payload-position LUT and the
 * schedule cache (reuse, invalidation, eviction).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "alrescha/accelerator.hh"
#include "alrescha/sim/replay.hh"
#include "alrescha/sim/schedule.hh"
#include "common/random.hh"
#include "sparse/coo.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

/** The full serialized stat listing of an engine. */
std::string
statDump(Engine &e)
{
    std::ostringstream os;
    e.statGroup().dump(os);
    return os.str();
}

AccelParams
makeParams(Index omega, bool use_schedule, int threads, bool simd = true)
{
    AccelParams p;
    p.omega = omega;
    p.useSchedule = use_schedule;
    p.engineThreads = threads;
    p.simdMode = simd ? SimdMode::Auto : SimdMode::Scalar;
    return p;
}

void
expectTimingEq(const RunTiming &a, const RunTiming &b, const char *what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.seqCycles, b.seqCycles) << what;
    EXPECT_EQ(a.parCycles, b.parCycles) << what;
}

struct Case
{
    Index omega;
    int threads;
    uint64_t seed;
};

class ScheduleEquivalence : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(ScheduleEquivalence, SpmvBitIdentical)
{
    const Case c = GetParam();
    Rng rng(c.seed);
    CsrMatrix a = gen::randomSpd(97, 6, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    Engine ref(makeParams(c.omega, false, 1));
    Engine sch(makeParams(c.omega, true, c.threads));
    ref.program(&ld, &table);
    sch.program(&ld, &table);

    DenseVector x(a.cols());
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = Value(i % 13) - 6.0;

    // Repeated runs carry cache-line and switch state across runs.
    for (int run = 0; run < 3; ++run) {
        RunTiming tr, ts;
        DenseVector yr = ref.runSpmv(x, &tr);
        DenseVector ys = sch.runSpmv(x, &ts);
        ASSERT_EQ(yr, ys) << "run " << run;
        expectTimingEq(tr, ts, "spmv timing");
    }
    EXPECT_EQ(statDump(ref), statDump(sch));
}

TEST_P(ScheduleEquivalence, SpmmBitIdentical)
{
    const Case c = GetParam();
    Rng rng(c.seed + 100);
    CsrMatrix a = gen::blockStructured(96, c.omega, 3, 0.5, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    Engine ref(makeParams(c.omega, false, 1));
    Engine sch(makeParams(c.omega, true, c.threads));
    ref.program(&ld, &table);
    sch.program(&ld, &table);

    std::vector<DenseVector> xs(3, DenseVector(a.cols()));
    for (size_t j = 0; j < xs.size(); ++j)
        for (size_t i = 0; i < xs[j].size(); ++i)
            xs[j][i] = Value((i * (j + 1)) % 17) - 8.0;

    for (int run = 0; run < 3; ++run) {
        RunTiming tr, ts;
        auto yr = ref.runSpmm(xs, &tr);
        auto ys = sch.runSpmm(xs, &ts);
        ASSERT_EQ(yr, ys) << "run " << run;
        expectTimingEq(tr, ts, "spmm timing");
    }
    EXPECT_EQ(statDump(ref), statDump(sch));
}

TEST_P(ScheduleEquivalence, SymgsBitIdentical)
{
    const Case c = GetParam();
    Rng rng(c.seed + 200);
    CsrMatrix a = gen::banded(101, 5, 0.7, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::SymGs);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);
    ConfigTable bwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Backward);

    Engine ref(makeParams(c.omega, false, 1));
    Engine sch(makeParams(c.omega, true, c.threads));

    DenseVector b(a.rows(), 1.0);
    DenseVector xr(a.rows(), 0.0), xs(a.rows(), 0.0);
    // Alternate directions like a symmetric smoother; x evolves, so
    // every sweep checks both the recurrence and the stream timing.
    for (int run = 0; run < 4; ++run) {
        const ConfigTable &t = run % 2 ? bwd : fwd;
        ref.program(&ld, &t);
        sch.program(&ld, &t);
        RunTiming tr, ts;
        ref.runSymgsSweep(b, xr, &tr);
        sch.runSymgsSweep(b, xs, &ts);
        ASSERT_EQ(xr, xs) << "sweep " << run;
        expectTimingEq(tr, ts, "symgs timing");
    }
    EXPECT_EQ(statDump(ref), statDump(sch));
}

TEST_P(ScheduleEquivalence, MixedKernelsShareState)
{
    // Interleave SpMV-layout and SymGS runs through one engine pair:
    // the schedule path must leave cache, link-stack, and switch state
    // exactly where the interpreter would.
    const Case c = GetParam();
    Rng rng(c.seed + 300);
    CsrMatrix a = gen::stencil2d(9, 9);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::SymGs);
    ConfigTable spmv = ConfigTable::convert(KernelType::SpMV, ld);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);

    Engine ref(makeParams(c.omega, false, 1));
    Engine sch(makeParams(c.omega, true, c.threads));

    DenseVector b(a.rows(), 0.5);
    DenseVector xr(a.rows(), 0.0), xs(a.rows(), 0.0);
    for (int run = 0; run < 3; ++run) {
        ref.program(&ld, &spmv);
        sch.program(&ld, &spmv);
        RunTiming tr, ts;
        DenseVector yr = ref.runSpmv(b, &tr);
        DenseVector ys = sch.runSpmv(b, &ts);
        ASSERT_EQ(yr, ys);
        expectTimingEq(tr, ts, "mixed spmv timing");

        ref.program(&ld, &fwd);
        sch.program(&ld, &fwd);
        ref.runSymgsSweep(b, xr, &tr);
        sch.runSymgsSweep(b, xs, &ts);
        ASSERT_EQ(xr, xs);
        expectTimingEq(tr, ts, "mixed symgs timing");
    }
    EXPECT_EQ(statDump(ref), statDump(sch));
}

INSTANTIATE_TEST_SUITE_P(
    OmegaThreads, ScheduleEquivalence,
    ::testing::Values(Case{4, 1, 11}, Case{4, 2, 12}, Case{4, 8, 13},
                      Case{8, 1, 14}, Case{8, 2, 15}, Case{8, 8, 16}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return "w" + std::to_string(info.param.omega) + "_t" +
               std::to_string(info.param.threads);
    });

TEST(ScheduleEquivalence, PcgFullSolveBitIdentical)
{
    Rng rng(42);
    CsrMatrix a = gen::stencil2d(12, 12);

    AccelParams pr = makeParams(8, false, 1);
    AccelParams ps = makeParams(8, true, 1);
    Accelerator ref(pr), sch(ps);
    ref.loadPde(a);
    sch.loadPde(a);

    DenseVector b(a.rows(), 1.0);
    PcgOptions opts;
    opts.maxIterations = 25;
    PcgResult r = ref.pcg(b, opts);
    PcgResult s = sch.pcg(b, opts);

    EXPECT_EQ(r.x, s.x);
    EXPECT_EQ(r.iterations, s.iterations);
    EXPECT_EQ(r.relResidual, s.relResidual);
    EXPECT_EQ(r.history, s.history);
    EXPECT_EQ(ref.report().cycles, sch.report().cycles);
    EXPECT_EQ(statDump(ref.engine()), statDump(sch.engine()));
}

TEST(PayloadLut, MatchesPayloadPosition)
{
    for (Index omega : {Index(4), Index(8)}) {
        for (LdLayout layout : {LdLayout::Plain, LdLayout::SymGs}) {
            Rng rng(7);
            CsrMatrix a = gen::banded(41, 4, 0.8, rng);
            LocallyDenseMatrix ld =
                LocallyDenseMatrix::encode(a, omega, layout);
            // All three ordering cases agree with payloadPosition().
            for (int diagBlk = 0; diagBlk < 2; ++diagBlk) {
                for (int upper = 0; upper < 2; ++upper) {
                    if (diagBlk && upper)
                        continue; // diagonal blocks are never "upper"
                    const int32_t *lut =
                        ld.payloadLut(diagBlk != 0, upper != 0);
                    for (Index lr = 0; lr < omega; ++lr) {
                        for (Index lc = 0; lc < omega; ++lc) {
                            bool sepDiag =
                                layout == LdLayout::SymGs && diagBlk;
                            int64_t want =
                                LocallyDenseMatrix::payloadPosition(
                                    layout, sepDiag, upper != 0, omega,
                                    lr, lc);
                            EXPECT_EQ(
                                int64_t(lut[size_t(lr) * omega + lc]),
                                want)
                                << "layout " << int(layout) << " diag "
                                << diagBlk << " upper " << upper;
                        }
                    }
                }
            }
        }
    }
}

TEST(PayloadLut, BlockValueRoundTripsEveryBlock)
{
    Rng rng(21);
    CsrMatrix a = gen::randomSpd(77, 5, rng);
    for (LdLayout layout : {LdLayout::Plain, LdLayout::SymGs}) {
        LocallyDenseMatrix ld = LocallyDenseMatrix::encode(a, 8, layout);
        // decode() exercises blockValue for every stored element; the
        // round-trip identity proves the LUT wrapper decodes the
        // in-block ordering exactly.
        CsrMatrix back = ld.decode();
        EXPECT_EQ(back.rows(), a.rows());
        EXPECT_EQ(back.vals(), a.vals());
        EXPECT_EQ(back.colIdx(), a.colIdx());
        EXPECT_EQ(back.rowPtr(), a.rowPtr());
    }
}

TEST(ScheduleCache, CompiledOnceAcrossRuns)
{
    Rng rng(5);
    CsrMatrix a = gen::randomSpd(64, 5, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    Engine e(makeParams(8, true, 1));
    e.program(&ld, &table);
    EXPECT_EQ(e.scheduleCompiles(), 0u);
    DenseVector x(a.cols(), 1.0);
    for (int i = 0; i < 5; ++i)
        e.runSpmv(x);
    EXPECT_EQ(e.scheduleCompiles(), 1u);
    EXPECT_EQ(e.cachedSchedules(), 1u);

    // prepareSchedule is idempotent on a warm cache.
    EXPECT_NE(e.prepareSchedule(), nullptr);
    EXPECT_EQ(e.scheduleCompiles(), 1u);
}

TEST(ScheduleCache, DistinctTablesGetDistinctSchedules)
{
    Rng rng(6);
    CsrMatrix a = gen::banded(80, 4, 0.8, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);
    ConfigTable bwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Backward);

    Engine e(makeParams(8, true, 1));
    DenseVector b(a.rows(), 1.0), x(a.rows(), 0.0);
    for (int i = 0; i < 3; ++i) {
        e.program(&ld, &fwd);
        e.runSymgsSweep(b, x);
        e.program(&ld, &bwd);
        e.runSymgsSweep(b, x);
    }
    // One compile per table, re-used across all later sweeps.
    EXPECT_EQ(e.scheduleCompiles(), 2u);
    EXPECT_EQ(e.cachedSchedules(), 2u);
}

TEST(ScheduleCache, InvalidatedOnReload)
{
    Rng rng(9);
    CsrMatrix a = gen::stencil2d(8, 8);
    Accelerator acc(makeParams(8, true, 1));
    acc.loadPde(a);
    DenseVector x(a.cols(), 1.0);
    acc.spmv(x);
    EXPECT_EQ(acc.engine().scheduleCompiles(), 1u);

    // Reloading destroys the old matrix/tables; the cache must drop
    // them and compile fresh against the new objects.
    acc.loadPde(a);
    EXPECT_EQ(acc.engine().cachedSchedules(), 0u);
    acc.spmv(x);
    EXPECT_EQ(acc.engine().scheduleCompiles(), 2u);
}

TEST(ScheduleCache, EvictsBeyondCapacity)
{
    Rng rng(10);
    CsrMatrix a = gen::randomSpd(48, 4, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    // Ten distinct tables against one matrix: the MRU cache keeps the
    // most recent eight.
    std::vector<ConfigTable> tables;
    for (int i = 0; i < 10; ++i)
        tables.push_back(ConfigTable::convert(KernelType::SpMV, ld));

    Engine e(makeParams(8, true, 1));
    DenseVector x(a.cols(), 1.0);
    for (auto &t : tables) {
        e.program(&ld, &t);
        e.runSpmv(x);
    }
    EXPECT_EQ(e.scheduleCompiles(), 10u);
    EXPECT_EQ(e.cachedSchedules(), 8u);

    // The most recent table is still cached...
    e.program(&ld, &tables.back());
    e.runSpmv(x);
    EXPECT_EQ(e.scheduleCompiles(), 10u);
    // ...but the first one was evicted and recompiles.
    e.program(&ld, &tables.front());
    e.runSpmv(x);
    EXPECT_EQ(e.scheduleCompiles(), 11u);
}

TEST(ScheduleCache, ReassignedObjectsDoNotAliasStaleSchedules)
{
    // Regression: the cache used to key slots on the (ld, table)
    // pointer pair.  A matrix/table rebuilt *in place* (or a new object
    // allocated at a recycled address) has the same pointers but
    // different payload, and the stale schedule replayed the OLD
    // matrix's values.  Generation keys make every construction
    // distinct, so the rebuild below must recompile and produce the new
    // matrix's result.
    Rng rng(11);
    CsrMatrix a = gen::randomSpd(64, 5, rng);
    CsrMatrix a2 = a; // same shape...
    for (Value &v : a2.vals()) // ...different payload
        v *= 2.0;

    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    Engine e(makeParams(8, true, 1));
    e.program(&ld, &table);
    DenseVector x(a.cols(), 1.0);
    DenseVector y1 = e.runSpmv(x);
    EXPECT_EQ(e.scheduleCompiles(), 1u);

    // Rebuild at the same addresses with the same shape.
    ld = LocallyDenseMatrix::encode(a2, 8, LdLayout::Plain);
    table = ConfigTable::convert(KernelType::SpMV, ld);
    e.program(&ld, &table);
    DenseVector y2 = e.runSpmv(x);
    EXPECT_EQ(e.scheduleCompiles(), 2u)
        << "stale schedule served for a rebuilt matrix/table pair";

    // The result must be the doubled matrix's, not the cached one's.
    Engine fresh(makeParams(8, true, 1));
    LocallyDenseMatrix ld2 =
        LocallyDenseMatrix::encode(a2, 8, LdLayout::Plain);
    ConfigTable table2 = ConfigTable::convert(KernelType::SpMV, ld2);
    fresh.program(&ld2, &table2);
    EXPECT_EQ(y2, fresh.runSpmv(x));
    for (Index i = 0; i < a.rows(); ++i)
        EXPECT_EQ(y2[i], 2.0 * y1[i]);
}

// ---------------------------------------------------------------------
// SIMD replay equivalence (ISSUE 3): the ω-specialized SIMD kernels,
// the scheduled scalar kernels, and the interpreter must agree bit for
// bit -- results, cycles, and the whole stat dump.  On portable builds
// SimdMode::Auto resolves to the scalar table, so these tests still
// pin scalar/scalar/interpreter equality there.
// ---------------------------------------------------------------------

namespace {

/** Three engines programmed alike: interpreter, scheduled scalar,
 *  scheduled SIMD. */
struct EngineTriple
{
    Engine interp;
    Engine scalar;
    Engine simd;

    EngineTriple(Index omega, int threads)
        : interp(makeParams(omega, false, 1)),
          scalar(makeParams(omega, true, threads, false)),
          simd(makeParams(omega, true, threads, true))
    {
    }

    void program(const LocallyDenseMatrix *ld, const ConfigTable *t)
    {
        interp.program(ld, t);
        scalar.program(ld, t);
        simd.program(ld, t);
    }
};

class SimdReplayEquivalence : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(SimdReplayEquivalence, SpmvRectangularNonMultipleOfOmega)
{
    // 97 x 61: both dimensions indivisible by omega, so every tail
    // chunk exercises the zero-padded staging buffer.
    const Case c = GetParam();
    Rng rng(c.seed);
    CsrMatrix a = gen::randomSparse(97, 61, 5, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    EngineTriple e(c.omega, c.threads);
    e.program(&ld, &table);

    DenseVector x(a.cols());
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = Value(i % 7) - 3.5;

    for (int run = 0; run < 3; ++run) {
        RunTiming ti, tc, tv;
        DenseVector yi = e.interp.runSpmv(x, &ti);
        DenseVector yc = e.scalar.runSpmv(x, &tc);
        DenseVector yv = e.simd.runSpmv(x, &tv);
        ASSERT_EQ(yi, yc) << "run " << run;
        ASSERT_EQ(yi, yv) << "run " << run;
        expectTimingEq(ti, tc, "scalar spmv timing");
        expectTimingEq(ti, tv, "simd spmv timing");
    }
    EXPECT_EQ(statDump(e.interp), statDump(e.scalar));
    EXPECT_EQ(statDump(e.interp), statDump(e.simd));
}

TEST_P(SimdReplayEquivalence, SpmmRegisterBlocked)
{
    const Case c = GetParam();
    Rng rng(c.seed + 400);
    CsrMatrix a = gen::blockStructured(88, c.omega, 3, 0.5, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    EngineTriple e(c.omega, c.threads);
    e.program(&ld, &table);

    // k = 5 right-hand sides: odd count, so the register-blocked SpMM
    // kernel sees a full set plus a remainder.
    std::vector<DenseVector> xs(5, DenseVector(a.cols()));
    for (size_t j = 0; j < xs.size(); ++j)
        for (size_t i = 0; i < xs[j].size(); ++i)
            xs[j][i] = Value((i * (2 * j + 1)) % 19) - 9.0;

    for (int run = 0; run < 2; ++run) {
        RunTiming ti, tc, tv;
        auto yi = e.interp.runSpmm(xs, &ti);
        auto yc = e.scalar.runSpmm(xs, &tc);
        auto yv = e.simd.runSpmm(xs, &tv);
        ASSERT_EQ(yi, yc) << "run " << run;
        ASSERT_EQ(yi, yv) << "run " << run;
        expectTimingEq(ti, tc, "scalar spmm timing");
        expectTimingEq(ti, tv, "simd spmm timing");
    }
    EXPECT_EQ(statDump(e.interp), statDump(e.scalar));
    EXPECT_EQ(statDump(e.interp), statDump(e.simd));
}

TEST_P(SimdReplayEquivalence, SymgsSweepsBothDirections)
{
    const Case c = GetParam();
    Rng rng(c.seed + 500);
    CsrMatrix a = gen::banded(101, 6, 0.7, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, c.omega, LdLayout::SymGs);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);
    ConfigTable bwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Backward);

    EngineTriple e(c.omega, c.threads);

    DenseVector b(a.rows(), 1.0);
    DenseVector xi(a.rows(), 0.0), xc(a.rows(), 0.0), xv(a.rows(), 0.0);
    for (int run = 0; run < 4; ++run) {
        const ConfigTable &t = run % 2 ? bwd : fwd;
        e.program(&ld, &t);
        RunTiming ti, tc, tv;
        e.interp.runSymgsSweep(b, xi, &ti);
        e.scalar.runSymgsSweep(b, xc, &tc);
        e.simd.runSymgsSweep(b, xv, &tv);
        ASSERT_EQ(xi, xc) << "sweep " << run;
        ASSERT_EQ(xi, xv) << "sweep " << run;
        expectTimingEq(ti, tc, "scalar symgs timing");
        expectTimingEq(ti, tv, "simd symgs timing");
    }
    EXPECT_EQ(statDump(e.interp), statDump(e.scalar));
    EXPECT_EQ(statDump(e.interp), statDump(e.simd));
}

INSTANTIATE_TEST_SUITE_P(
    OmegaThreads, SimdReplayEquivalence,
    ::testing::Values(Case{4, 1, 31}, Case{4, 2, 32}, Case{4, 8, 33},
                      Case{8, 1, 34}, Case{8, 2, 35}, Case{8, 8, 36}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return "w" + std::to_string(info.param.omega) + "_t" +
               std::to_string(info.param.threads);
    });

TEST(SimdReplay, EmptyMatrix)
{
    // Zero stored blocks: pathCount == 0, nothing staged, y all zero.
    CsrMatrix a = CsrMatrix::fromCoo(CooMatrix(16, 16));
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);

    EngineTriple e(8, 2);
    e.program(&ld, &table);
    DenseVector x(16, 3.0);
    DenseVector yi = e.interp.runSpmv(x);
    DenseVector yv = e.simd.runSpmv(x);
    EXPECT_EQ(yi, yv);
    EXPECT_EQ(yv, DenseVector(16, 0.0));

    std::vector<DenseVector> xs(2, x);
    EXPECT_EQ(e.interp.runSpmm(xs), e.simd.runSpmm(xs));
    EXPECT_EQ(statDump(e.interp), statDump(e.simd));
}

TEST(SimdReplay, SingleBlockRowSmallerThanOmega)
{
    // 5 x 5 at omega = 8: one block row, every lane loop is all tail.
    CsrMatrix a = gen::tridiagonal(5);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::SymGs);
    ConfigTable spmv = ConfigTable::convert(KernelType::SpMV, ld);
    ConfigTable fwd = ConfigTable::convert(KernelType::SymGS, ld, true,
                                           GsSweep::Forward);

    EngineTriple e(8, 1);
    e.program(&ld, &spmv);
    DenseVector x{1.0, -2.0, 3.0, -4.0, 5.0};
    DenseVector y = e.interp.runSpmv(x);
    EXPECT_EQ(y, e.simd.runSpmv(x));
    EXPECT_EQ(y, e.scalar.runSpmv(x));

    e.program(&ld, &fwd);
    DenseVector b(5, 1.0);
    DenseVector xi(5, 0.0), xv(5, 0.0);
    e.interp.runSymgsSweep(b, xi);
    e.simd.runSymgsSweep(b, xv);
    EXPECT_EQ(xi, xv);
    EXPECT_EQ(statDump(e.interp), statDump(e.simd));
}

TEST(SimdReplay, GatherPlanInvariants)
{
    Rng rng(77);
    CsrMatrix a = gen::randomSparse(97, 61, 5, rng);
    for (Index omega : {Index(4), Index(8)}) {
        LocallyDenseMatrix ld =
            LocallyDenseMatrix::encode(a, omega, LdLayout::Plain);
        ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);
        ExecSchedule s =
            compileSchedule(ld, table, makeParams(omega, true, 1));

        // Value records are loadable at full vector width.
        EXPECT_EQ(reinterpret_cast<uintptr_t>(s.values.data()) % 64, 0u);
        // The staging length covers the operand in whole chunks.
        EXPECT_EQ(s.paddedOperand % omega, 0u);
        EXPECT_GE(s.paddedOperand, size_t(a.cols()));
        EXPECT_LT(s.paddedOperand, size_t(a.cols()) + omega);
        // GEMV chunk offsets point at the path's block column.
        for (size_t i = 0; i < s.pathCount; ++i) {
            if (s.dp[i] == DataPathType::Gemv) {
                EXPECT_EQ(s.xOff[i], s.blockCol[i] * omega) << i;
            }
            EXPECT_LE(size_t(s.xOff[i]) + omega, s.paddedOperand) << i;
        }
    }
}

TEST(SimdReplay, IsaNameMatchesAvailability)
{
    // isaName() resolves --simd auto: one of the compiled-in ISAs, and
    // "scalar" exactly when no vector ISA both compiled in and runs
    // here.  compiledIsas() always leads with the scalar fallback.
    std::string compiled = replay::compiledIsas();
    EXPECT_EQ(compiled.rfind("scalar", 0), 0u) << compiled;
    std::string isa = replay::isaName();
    EXPECT_NE(compiled.find(isa), std::string::npos)
        << isa << " not in " << compiled;
    if (!replay::simdAvailable()) {
        EXPECT_EQ(isa, "scalar");
    }
    // Forcing scalar always lands on scalar, on every build.
    EXPECT_STREQ(replay::selectedName(SimdMode::Scalar), "scalar");
}

TEST(ScheduleCompile, RecordsMatchMatrixShape)
{
    Rng rng(3);
    CsrMatrix a = gen::blockStructured(64, 8, 3, 0.6, rng);
    LocallyDenseMatrix ld =
        LocallyDenseMatrix::encode(a, 8, LdLayout::Plain);
    ConfigTable table = ConfigTable::convert(KernelType::SpMV, ld);
    AccelParams p = makeParams(8, true, 1);
    ExecSchedule s = compileSchedule(ld, table, p);

    EXPECT_EQ(s.pathCount, table.entries().size());
    EXPECT_EQ(s.rowBegin.size(), s.pathCount + 1);
    EXPECT_EQ(s.rowBegin.back(), s.rowIndex.size());
    EXPECT_EQ(s.values.size(), s.rowIndex.size() * size_t(p.omega));
    EXPECT_TRUE(s.parallelSafe);
    EXPECT_GT(s.parFlops, 0.0);
    EXPECT_GT(s.bytes(), 0u);
    // Every gathered row belongs to its path's block row.
    for (size_t i = 0; i < s.pathCount; ++i) {
        for (size_t rr = s.rowBegin[i]; rr < s.rowBegin[i + 1]; ++rr) {
            EXPECT_EQ(s.rowIndex[rr] / p.omega, s.blockRow[i]);
        }
    }
}
