/**
 * @file
 * Diff-engine tests: the two hard invariants (self-diff is structurally
 * empty; bucket deltas conserve the total cycle delta exactly) across
 * kernels and engine modes, a real config perturbation (cache line
 * width) attributed to the cache buckets, bench-row alignment with
 * missing rows, metrics diffs, schema/kind refusal, and the --fail-on
 * rule grammar.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "alrescha/accelerator.hh"
#include "alrescha/report.hh"
#include "alrescha/sim/diff.hh"
#include "alrescha/sim/profile.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "sparse/generators.hh"

using namespace alr;

namespace {

/** Run one kernel under the recorder and return the full sim report
 *  document (stats + utilization + embedded profile), exactly like the
 *  --ab harness builds its two sides. */
json::Value
simDoc(const std::string &kernel, const AccelParams &params)
{
    profile::reset();
    profile::setEnabled(true);
    CsrMatrix a = gen::stencil2d(16, 16);
    Accelerator acc(params);
    if (kernel == "symgs") {
        acc.loadPde(a);
        DenseVector b(a.rows(), 1.0), x(a.rows(), 0.0);
        acc.symgsSweep(b, x, GsSweep::Symmetric);
    } else {
        acc.loadSpmvOnly(a);
        acc.spmv(DenseVector(a.cols(), 1.0));
    }
    SimReportOptions opt;
    opt.kernel = kernel;
    opt.omega = params.omega;
    opt.simdMode = params.simdMode;
    opt.utilization = true;
    opt.stats = true;
    std::ostringstream os;
    writeSimReportJson(os, acc, opt);
    profile::setEnabled(false);
    profile::reset();

    json::Parsed p = json::parse(os.str());
    EXPECT_TRUE(p.ok) << p.error;
    return p.value;
}

diff::Document
diffOk(const json::Value &oldDoc, const json::Value &newDoc)
{
    diff::Document d;
    std::string err;
    EXPECT_TRUE(diff::diff(oldDoc, newDoc, &d, &err)) << err;
    return d;
}

AccelParams
engineMode(bool use_schedule, bool simd)
{
    AccelParams p;
    p.useSchedule = use_schedule;
    p.simdMode = simd ? SimdMode::Auto : SimdMode::Scalar;
    return p;
}

TEST(Diff, SelfDiffEmptyAcrossKernelsAndEngines)
{
    const AccelParams modes[] = {
        engineMode(false, false), // interpreter
        engineMode(true, false),  // scheduled scalar
        engineMode(true, true),   // SIMD replay
    };
    for (const char *kernel : {"spmv", "symgs"}) {
        for (const AccelParams &p : modes) {
            json::Value doc = simDoc(kernel, p);
            diff::Document d = diffOk(doc, doc);
            EXPECT_TRUE(d.empty()) << kernel;
            EXPECT_TRUE(d.conserved) << kernel;
            EXPECT_EQ(d.rows.size(), 0u) << kernel;
            EXPECT_EQ(d.totalCycleDelta, 0) << kernel;
            EXPECT_EQ(d.kind, diff::ArtifactKind::Sim);
        }
    }
}

TEST(Diff, EngineModesAreBitIdentical)
{
    // The interpreter, the scheduled scalar walk, and the SIMD replay
    // are one timing model: their full sim documents must diff empty
    // (the "version" provenance may differ, nothing else).
    json::Value interp = simDoc("spmv", engineMode(false, false));
    json::Value simd = simDoc("spmv", engineMode(true, true));
    diff::Document d = diffOk(interp, simd);
    EXPECT_EQ(d.totalCycleDelta, 0);
    EXPECT_EQ(d.totalByteDelta, 0);
    EXPECT_TRUE(d.conserved);
    for (const diff::RowDiff &r : d.rows) {
        EXPECT_TRUE(r.buckets.empty());
        EXPECT_TRUE(r.stats.empty());
        EXPECT_TRUE(r.energy.empty());
    }
}

TEST(Diff, CacheLinePerturbationIsAttributedAndConserved)
{
    AccelParams base;
    AccelParams narrow = base;
    narrow.cacheLineBytes = 32;

    // SymGS reads x through the local cache on its critical path, so
    // the line width is a real timing knob there (pure stencil SpMV
    // never misses and would diff empty).
    json::Value before = simDoc("symgs", base);
    json::Value after = simDoc("symgs", narrow);
    diff::Document d = diffOk(before, after);

    // A real knob change must move cycles...
    EXPECT_FALSE(d.empty());
    EXPECT_NE(d.totalCycleDelta, 0);
    // ...and the per-bucket attribution must account for every one of
    // them: conservation is exact, not approximate.
    EXPECT_TRUE(d.conserved);
    ASSERT_EQ(d.rows.size(), 1u);
    int64_t bucket_sum = 0;
    bool cache_moved = false;
    for (const diff::BucketDelta &b : d.rows[0].buckets) {
        bucket_sum += b.cycleDelta();
        if (b.cause == "cache_miss" || b.cause == "cache_access")
            cache_moved = b.cycleDelta() != 0 || cache_moved;
    }
    EXPECT_EQ(bucket_sum, d.totalCycleDelta);
    EXPECT_TRUE(cache_moved)
        << "halving the cache line moved no cache bucket";
}

TEST(Diff, TextAndFoldedOutputsCarryTheMovers)
{
    json::Value before = simDoc("symgs", AccelParams{});
    AccelParams narrow;
    narrow.cacheLineBytes = 32;
    json::Value after = simDoc("symgs", narrow);
    diff::Document d = diffOk(before, after);

    std::ostringstream text;
    diff::writeText(text, d);
    EXPECT_NE(text.str().find("totals:"), std::string::npos);

    std::ostringstream js;
    diff::writeJson(js, d);
    json::Parsed parsed = json::parse(js.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const json::Value *conserved = parsed.value.find("conserved");
    ASSERT_NE(conserved, nullptr);
    EXPECT_TRUE(conserved->asBool());
    const json::Value *empty = parsed.value.find("empty");
    ASSERT_NE(empty, nullptr);
    EXPECT_FALSE(empty->asBool());

    std::ostringstream pos, neg;
    diff::writeFolded(pos, neg, d);
    // Every changed bucket folds into exactly one of the two streams.
    EXPECT_FALSE(pos.str().empty() && neg.str().empty());
}

json::Value
benchDoc(const std::string &rows)
{
    std::string text = R"({"schema_version": 1, "bench": "t",)"
                       R"( "kernel": "spmv", "datasets": [)" +
                       rows + "]}";
    json::Parsed p = json::parse(text);
    EXPECT_TRUE(p.ok) << p.error;
    return p.value;
}

TEST(Diff, BenchRowAlignment)
{
    json::Value oldDoc = benchDoc(
        R"({"name": "a", "suite": "s", "wall_ms": 1.0, "cycles": 100,
            "bytes_streamed": 640, "stats": {"alu_ops": 10}},
           {"name": "gone", "suite": "s", "wall_ms": 1.0, "cycles": 5,
            "bytes_streamed": 64})");
    json::Value newDoc = benchDoc(
        R"({"name": "a", "suite": "s", "wall_ms": 9.0, "cycles": 130,
            "bytes_streamed": 640, "stats": {"alu_ops": 12}},
           {"name": "fresh", "suite": "s", "wall_ms": 1.0, "cycles": 7,
            "bytes_streamed": 64})");

    diff::Document d = diffOk(oldDoc, newDoc);
    EXPECT_EQ(d.kind, diff::ArtifactKind::Bench);
    EXPECT_EQ(d.totalCycleDelta, 130 - 100 + 7 - 5);

    bool saw_a = false, saw_gone = false, saw_fresh = false;
    for (const diff::RowDiff &r : d.rows) {
        if (r.name == "a") {
            saw_a = true;
            EXPECT_EQ(r.cycleDelta(), 30);
            // wall_ms is host noise, never a diffable stat.
            for (const diff::ValueDelta &v : r.stats)
                EXPECT_EQ(v.path.find("wall_ms"), std::string::npos);
            ASSERT_EQ(r.stats.size(), 1u);
            EXPECT_EQ(r.stats[0].path, "stats.alu_ops");
            EXPECT_DOUBLE_EQ(r.stats[0].delta(), 2.0);
        } else if (r.name == "gone") {
            saw_gone = true;
            EXPECT_TRUE(r.onlyOld);
        } else if (r.name == "fresh") {
            saw_fresh = true;
            EXPECT_TRUE(r.onlyNew);
        }
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_gone);
    EXPECT_TRUE(saw_fresh);

    // Rows present on one side only always trip a fail rule, even a
    // loose one: appearing/disappearing datasets are never "no change".
    diff::FailRule loose;
    loose.metric = diff::FailRule::Metric::Cycles;
    loose.threshold = 1e12;
    EXPECT_TRUE(diff::exceeds(d, loose));
}

TEST(Diff, SelfDiffOfBenchIsEmpty)
{
    json::Value doc = benchDoc(
        R"({"name": "a", "suite": "s", "wall_ms": 1.25, "cycles": 100,
            "bytes_streamed": 640, "stats": {"alu_ops": 10},
            "energy": {"dram": 0.5, "total": 0.75}})");
    diff::Document d = diffOk(doc, doc);
    EXPECT_TRUE(d.empty());

    // Same modeled numbers but different host wall time: still empty,
    // wall_ms is excluded from bench diffs by design.
    json::Value slower = benchDoc(
        R"({"name": "a", "suite": "s", "wall_ms": 80.0, "cycles": 100,
            "bytes_streamed": 640, "stats": {"alu_ops": 10},
            "energy": {"dram": 0.5, "total": 0.75}})");
    EXPECT_TRUE(diffOk(doc, slower).empty());
}

TEST(Diff, MetricsSnapshots)
{
    auto snapshot = [](double reqs) {
        metrics::Registry reg;
        reg.counter("serve_requests_total", "requests").add(reqs);
        reg.gauge("queue_depth", "depth").set(3.0);
        std::ostringstream os;
        reg.writeJson(os);
        json::Parsed p = json::parse(os.str());
        EXPECT_TRUE(p.ok) << p.error;
        return p.value;
    };

    json::Value a = snapshot(100.0);
    EXPECT_EQ(diff::classify(a), diff::ArtifactKind::Metrics);
    EXPECT_TRUE(diffOk(a, a).empty());

    diff::Document d = diffOk(a, snapshot(140.0));
    ASSERT_EQ(d.rows.size(), 1u);
    bool saw = false;
    for (const diff::ValueDelta &v : d.rows[0].stats) {
        if (v.path.find("serve_requests_total") != std::string::npos) {
            saw = true;
            EXPECT_DOUBLE_EQ(v.delta(), 40.0);
        }
    }
    EXPECT_TRUE(saw);
}

TEST(Diff, RefusesMismatchedDocuments)
{
    json::Value sim = simDoc("spmv", AccelParams{});
    json::Value bench = benchDoc(
        R"({"name": "a", "suite": "s", "wall_ms": 1.0, "cycles": 1,
            "bytes_streamed": 64})");

    diff::Document d;
    std::string err;

    // Different artifact kinds never diff.
    EXPECT_FALSE(diff::diff(sim, bench, &d, &err));
    EXPECT_NE(err.find("kind"), std::string::npos) << err;

    // Unrecognized documents are refused, not guessed at.
    json::Parsed junk = json::parse(R"({"foo": 1})");
    ASSERT_TRUE(junk.ok);
    EXPECT_EQ(diff::classify(junk.value), diff::ArtifactKind::Unknown);
    EXPECT_FALSE(diff::diff(junk.value, junk.value, &d, &err));

    // A schema_version bump refuses to diff against the old artifact.
    std::string bumped = json::dump(sim);
    size_t at = bumped.find("\"schema_version\": 1");
    ASSERT_NE(at, std::string::npos);
    bumped.replace(at, 19, "\"schema_version\": 2");
    json::Parsed other = json::parse(bumped);
    ASSERT_TRUE(other.ok) << other.error;
    EXPECT_FALSE(diff::diff(sim, other.value, &d, &err));
    EXPECT_NE(err.find("schema"), std::string::npos) << err;
}

TEST(Diff, FailRuleGrammar)
{
    diff::FailRule r;
    std::string err;

    ASSERT_TRUE(diff::parseFailRule("cycles>0.1%", &r, &err)) << err;
    EXPECT_EQ(r.metric, diff::FailRule::Metric::Cycles);
    EXPECT_DOUBLE_EQ(r.threshold, 0.1);
    EXPECT_TRUE(r.relative);

    ASSERT_TRUE(diff::parseFailRule("bytes>1024", &r, &err)) << err;
    EXPECT_EQ(r.metric, diff::FailRule::Metric::Bytes);
    EXPECT_DOUBLE_EQ(r.threshold, 1024.0);
    EXPECT_FALSE(r.relative);

    ASSERT_TRUE(diff::parseFailRule("energy>0", &r, &err)) << err;
    EXPECT_EQ(r.metric, diff::FailRule::Metric::Energy);
    EXPECT_FALSE(diff::describe(r).empty());

    EXPECT_FALSE(diff::parseFailRule("frobs>1", &r, &err));
    EXPECT_FALSE(diff::parseFailRule("cycles<1", &r, &err));
    EXPECT_FALSE(diff::parseFailRule("cycles>", &r, &err));
    EXPECT_FALSE(diff::parseFailRule("cycles>x", &r, &err));
    EXPECT_FALSE(diff::parseFailRule("", &r, &err));
}

TEST(Diff, FailRuleThresholds)
{
    json::Value oldDoc = benchDoc(
        R"({"name": "a", "suite": "s", "wall_ms": 1.0, "cycles": 1000,
            "bytes_streamed": 640})");
    json::Value newDoc = benchDoc(
        R"({"name": "a", "suite": "s", "wall_ms": 1.0, "cycles": 1005,
            "bytes_streamed": 640})");
    diff::Document d = diffOk(oldDoc, newDoc);

    diff::FailRule r;
    std::string err;

    // +5 cycles on 1000: above 0.1%, below 1%.
    ASSERT_TRUE(diff::parseFailRule("cycles>0.1%", &r, &err));
    EXPECT_TRUE(diff::exceeds(d, r));
    ASSERT_TRUE(diff::parseFailRule("cycles>1%", &r, &err));
    EXPECT_FALSE(diff::exceeds(d, r));

    // Absolute: above 4 cycles, not above 5.
    ASSERT_TRUE(diff::parseFailRule("cycles>4", &r, &err));
    EXPECT_TRUE(diff::exceeds(d, r));
    ASSERT_TRUE(diff::parseFailRule("cycles>5", &r, &err));
    EXPECT_FALSE(diff::exceeds(d, r));

    // Bytes did not move.
    ASSERT_TRUE(diff::parseFailRule("bytes>0", &r, &err));
    EXPECT_FALSE(diff::exceeds(d, r));
}

} // namespace
