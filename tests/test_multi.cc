/**
 * @file
 * Scale-out (multi-engine) tests: partition validity, functional
 * equivalence with a single accelerator, scaling of compute time,
 * and communication accounting.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "alrescha/multi.hh"
#include "common/random.hh"
#include "kernels/graph.hh"
#include "kernels/spmv.hh"
#include "sparse/generators.hh"

namespace alr {
namespace {

MultiParams
withEngines(int n)
{
    MultiParams p;
    p.numEngines = n;
    return p;
}

TEST(Multi, SlicesCoverAllRowsDisjointly)
{
    Rng rng(1);
    CsrMatrix a = gen::randomSpd(100, 5, rng);
    MultiAccelerator multi(withEngines(3));
    multi.loadSpmv(a);
    Index covered = 0;
    Index prevEnd = 0;
    for (int p = 0; p < multi.numEngines(); ++p) {
        auto [b, e] = multi.slice(p);
        EXPECT_EQ(b, prevEnd);
        EXPECT_LE(b, e);
        covered += e - b;
        prevEnd = e;
    }
    EXPECT_EQ(covered, 100u);
}

TEST(Multi, SpmvMatchesSingleEngine)
{
    Rng rng(2);
    CsrMatrix a = gen::blockStructured(256, 8, 4, 0.6, rng);
    DenseVector x(256);
    for (Index i = 0; i < 256; ++i)
        x[i] = 0.01 * Value(i);

    MultiAccelerator multi(withEngines(4));
    multi.loadSpmv(a);
    DenseVector got = multi.spmv(x);
    DenseVector want = spmv(a, x);
    for (Index i = 0; i < 256; ++i)
        EXPECT_NEAR(got[i], want[i], 1e-11);
}

TEST(Multi, GraphKernelsMatchReference)
{
    Rng rng(3);
    CsrMatrix g = gen::rmat(8, 5, rng);
    MultiAccelerator multi(withEngines(4));
    multi.loadGraph(g);

    EXPECT_EQ(multi.bfs(0).values, bfsReference(g, 0));

    DenseVector dijkstra = ssspReference(g, 0);
    DenseVector got = multi.sssp(0).values;
    for (size_t i = 0; i < dijkstra.size(); ++i) {
        if (std::isinf(dijkstra[i]))
            EXPECT_TRUE(std::isinf(got[i]));
        else
            EXPECT_NEAR(got[i], dijkstra[i], 1e-9);
    }
}

TEST(Multi, PagerankMatchesReference)
{
    Rng rng(4);
    CsrMatrix g = gen::powerLawGraph(400, 6, 0.9, rng, 0.5);
    MultiAccelerator multi(withEngines(3));
    multi.loadGraph(g);
    PageRankOptions opts;
    DenseVector got = multi.pagerank(opts).values;
    DenseVector want = pagerank(g, opts);
    for (size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-6);
}

TEST(Multi, ComputeTimeScalesDown)
{
    Rng rng(5);
    CsrMatrix a = gen::blockStructured(2048, 8, 5, 0.8, rng);
    DenseVector x(2048, 1.0);

    uint64_t prev = ~uint64_t(0);
    for (int engines : {1, 2, 4, 8}) {
        MultiAccelerator multi(withEngines(engines));
        multi.loadSpmv(a);
        multi.spmv(x);
        uint64_t compute = multi.report().computeCycles;
        EXPECT_LT(compute, prev)
            << engines << " engines should beat fewer";
        prev = compute;
    }
}

TEST(Multi, CommunicationIsAccounted)
{
    Rng rng(6);
    CsrMatrix g = gen::rmat(7, 4, rng);
    MultiAccelerator multi(withEngines(4));
    multi.loadGraph(g);
    multi.bfs(0);
    MultiReport r = multi.report();
    EXPECT_GT(r.commCycles, 0u);
    EXPECT_EQ(r.cycles, r.computeCycles + r.commCycles);
    EXPECT_GT(r.energyJoules, 0.0);
}

TEST(Multi, SingleEngineDegeneratesToPlainAccelerator)
{
    Rng rng(7);
    CsrMatrix a = gen::banded(128, 6, 0.8, rng);
    DenseVector x(128, 1.0);

    MultiAccelerator multi(withEngines(1));
    multi.loadSpmv(a);
    DenseVector y1 = multi.spmv(x);

    Accelerator single;
    single.loadSpmvOnly(a);
    DenseVector y2 = single.spmv(x);
    EXPECT_EQ(y1, y2);
}

TEST(Multi, MoreEnginesThanBlockRowsStillCorrect)
{
    Rng rng(8);
    CsrMatrix a = gen::randomSpd(16, 4, rng); // 2 block rows, 6 engines
    MultiAccelerator multi(withEngines(6));
    multi.loadSpmv(a);
    DenseVector x(16, 1.0);
    DenseVector want = spmv(a, x);
    DenseVector got = multi.spmv(x);
    for (Index i = 0; i < 16; ++i)
        EXPECT_NEAR(got[i], want[i], 1e-12);
}

TEST(Multi, DerivedRatiosAreGuardedOnEmptyReports)
{
    // A report from an array that has run nothing must not divide by
    // zero: the communication share is 0 and the imbalance trivially 1.
    MultiAccelerator multi(withEngines(4));
    MultiReport r = multi.report();
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.commFraction(), 0.0);
    EXPECT_EQ(r.imbalance(), 1.0);
}

TEST(Multi, DerivedRatiosWithMoreEnginesThanRows)
{
    // rows < engines leaves some partitions empty (zero rows => zero
    // run cycles), which used to blow up the max/min imbalance ratio
    // and the comm share of an all-idle report.  The guarded accessors
    // must stay finite and the run itself correct.
    Rng rng(9);
    CsrMatrix a = gen::randomSpd(8, 3, rng); // 1 block row, 6 engines
    MultiAccelerator multi(withEngines(6));
    multi.loadSpmv(a);
    DenseVector x(8, 1.0);
    DenseVector want = spmv(a, x);
    DenseVector got = multi.spmv(x);
    for (Index i = 0; i < 8; ++i)
        EXPECT_NEAR(got[i], want[i], 1e-12);

    MultiReport r = multi.report();
    EXPECT_GE(r.commFraction(), 0.0);
    EXPECT_LE(r.commFraction(), 1.0);
    EXPECT_GE(r.imbalance(), 1.0);
    EXPECT_TRUE(std::isfinite(r.imbalance()));
    if (r.cycles > 0) {
        EXPECT_EQ(r.commFraction(),
                  double(r.commCycles) / double(r.cycles));
    }
}

} // namespace
} // namespace alr
