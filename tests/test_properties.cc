/**
 * @file
 * Cross-module property sweeps: randomized invariants spanning the
 * whole stack -- format/metadata identities, engine-vs-reference
 * agreement under composed transformations (reordering, block-width
 * change, serialization), timing monotonicity, and energy accounting.
 * Each property runs over a range of random seeds via TEST_P.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "alrescha/accelerator.hh"
#include "alrescha/program_image.hh"
#include "common/random.hh"
#include "kernels/blas1.hh"
#include "kernels/graph.hh"
#include "kernels/spmv.hh"
#include "kernels/symgs.hh"
#include "sparse/algebra.hh"
#include "sparse/bcsr.hh"
#include "sparse/generators.hh"
#include "sparse/pattern_stats.hh"
#include "sparse/reorder.hh"

namespace alr {
namespace {

class Seeded : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Rng rng{GetParam()};

    DenseVector
    randomVector(Index n)
    {
        DenseVector v(n);
        for (auto &e : v)
            e = rng.nextDouble(-1.0, 1.0);
        return v;
    }
};

/** The locally-dense encoding never changes the represented matrix,
 *  for any layout and any block width. */
TEST_P(Seeded, EncodingIsLossless)
{
    CsrMatrix a = gen::randomSpd(30 + Index(GetParam() % 37), 5, rng);
    for (Index omega : {2u, 5u, 8u, 13u}) {
        EXPECT_EQ(
            LocallyDenseMatrix::encode(a, omega, LdLayout::Plain).decode(),
            a);
        EXPECT_EQ(
            LocallyDenseMatrix::encode(a, omega, LdLayout::SymGs).decode(),
            a);
    }
}

/** Metadata equals BCSR's for every block width (the §4.5 claim). */
TEST_P(Seeded, MetadataAlwaysMatchesBcsr)
{
    CsrMatrix a = gen::randomSparse(64, 64, 6, rng);
    for (Index omega : {4u, 8u, 16u}) {
        auto ld = LocallyDenseMatrix::encode(a, omega, LdLayout::Plain);
        EXPECT_EQ(ld.metadataBytes(),
                  BcsrMatrix::fromCsr(a, omega).metadataBytes());
    }
}

/** SymGS on the accelerator commutes with symmetric permutation:
 *  solving the permuted system gives the permuted sweep result. */
TEST_P(Seeded, SymGsCommutesWithRcm)
{
    CsrMatrix a = gen::banded(60, 5, 0.7, rng);
    DenseVector b = randomVector(60);

    auto perm = reverseCuthillMcKee(a);
    CsrMatrix ap = a.permuted(perm);
    DenseVector bp = permuteVector(b, perm);

    // Reference forward sweep on the permuted system...
    DenseVector xp(60, 0.0);
    gaussSeidelSweep(ap, bp, xp, GsSweep::Forward);

    // ...must equal the accelerator's sweep on the same system.
    Accelerator acc;
    acc.loadPde(ap);
    DenseVector xa(60, 0.0);
    acc.symgsSweep(bp, xa, GsSweep::Forward);
    for (Index i = 0; i < 60; ++i)
        EXPECT_NEAR(xa[i], xp[i], 1e-10);
}

/** Serialization round trips preserve engine behaviour exactly. */
TEST_P(Seeded, ProgramImagePreservesExecution)
{
    CsrMatrix a = gen::banded(48, 4, 0.8, rng);
    DenseVector x = randomVector(48);

    Accelerator direct;
    direct.loadSpmvOnly(a);
    DenseVector want = direct.spmv(x);

    std::stringstream ss;
    saveProgramImage(ss, buildSpmvProgram(a, 8));
    ProgramImage image = loadProgramImage(ss);
    Engine engine;
    engine.program(&image.matrix, &image.tables[0]);
    EXPECT_EQ(engine.runSpmv(x), want);
}

/** Cycles are monotone in matrix size for a fixed structure class. */
TEST_P(Seeded, CyclesMonotoneInProblemSize)
{
    uint64_t prev = 0;
    for (Index n : {128u, 256u, 512u}) {
        CsrMatrix a = gen::banded(n, 4, 0.8, rng);
        Accelerator acc;
        acc.loadPde(a);
        DenseVector b(n, 1.0), x(n, 0.0);
        acc.symgsSweep(b, x, GsSweep::Symmetric);
        EXPECT_GT(acc.engine().totalCycles(), prev);
        prev = acc.engine().totalCycles();
    }
}

/** Energy components are consistent: total equals the sum of parts
 *  and every part is non-negative. */
TEST_P(Seeded, EnergyAccountingIsConsistent)
{
    CsrMatrix a = gen::randomSpd(96, 6, rng);
    Accelerator acc;
    acc.loadPde(a);
    DenseVector b(96, 1.0), x(96, 0.0);
    acc.symgsSweep(b, x, GsSweep::Symmetric);
    acc.spmv(x);

    EnergyBreakdown e = acc.report().energy;
    EXPECT_GE(e.dram, 0.0);
    EXPECT_GE(e.sram, 0.0);
    EXPECT_GE(e.compute, 0.0);
    EXPECT_GE(e.reconfig, 0.0);
    EXPECT_GE(e.staticEnergy, 0.0);
    EXPECT_NEAR(e.total(),
                e.dram + e.sram + e.compute + e.reconfig +
                    e.staticEnergy,
                1e-18);
}

/** The engine's useful-byte count never exceeds total traffic. */
TEST_P(Seeded, UsefulBytesBoundedByTraffic)
{
    CsrMatrix a = gen::blockStructured(128, 8, 3,
                                       0.2 + 0.1 * double(GetParam() % 7),
                                       rng);
    Accelerator acc;
    acc.loadSpmvOnly(a);
    acc.spmv(DenseVector(128, 1.0));
    double useful =
        acc.engine().statGroup().lookup("useful_bytes");
    EXPECT_LE(useful, acc.engine().memory().totalBytes() + 1e-9);
    EXPECT_GT(useful, 0.0);
}

/** Graph kernels are invariant under vertex relabeling. */
TEST_P(Seeded, BfsInvariantUnderRelabeling)
{
    CsrMatrix g = gen::rmat(6, 5, rng);
    std::vector<Index> perm;
    for (auto v : rng.permutation(g.rows()))
        perm.push_back(v);
    CsrMatrix gp = g.permuted(perm);

    // source s in g corresponds to the position of s in perm.
    Index s = 0;
    Index sp = 0;
    for (Index i = 0; i < gp.rows(); ++i) {
        if (perm[i] == s)
            sp = i;
    }

    Accelerator a1, a2;
    a1.loadGraph(g);
    a2.loadGraph(gp);
    DenseVector d1 = a1.bfs(s).values;
    DenseVector d2 = a2.bfs(sp).values;
    for (Index i = 0; i < gp.rows(); ++i)
        EXPECT_EQ(d2[i], d1[perm[i]]);
}

/** A^T (A x) computed on the accelerator equals the Gram product. */
TEST_P(Seeded, SpmvComposesWithSpgemm)
{
    CsrMatrix a = gen::randomSparse(24, 18, 4, rng);
    CsrMatrix gram = spgemm(a.transposed(), a); // 18 x 18
    DenseVector x = randomVector(18);

    Accelerator acc;
    acc.loadSpmvOnly(a);
    DenseVector ax = acc.spmv(x);
    acc.loadSpmvOnly(a.transposed());
    DenseVector atax = acc.spmv(ax);

    DenseVector want = spmv(gram, x);
    for (Index i = 0; i < 18; ++i)
        EXPECT_NEAR(atax[i], want[i], 1e-10);
}

/** PCG on the accelerator solves every SPD structure class. */
TEST_P(Seeded, PcgSolvesAcrossStructureClasses)
{
    std::vector<CsrMatrix> systems;
    systems.push_back(gen::banded(64, 4, 0.7, rng));
    systems.push_back(gen::blockStructured(64, 8, 3, 0.6, rng));
    systems.push_back(gen::randomSpd(64, 5, rng));
    for (const CsrMatrix &a : systems) {
        DenseVector xTrue = randomVector(a.rows());
        DenseVector b = spmv(a, xTrue);
        Accelerator acc;
        acc.loadPde(a);
        PcgResult res = acc.pcg(b);
        EXPECT_TRUE(res.converged);
        EXPECT_LT(maxAbsDiff(res.x, xTrue), 1e-5);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Range<uint64_t>(1000, 1010));

} // namespace
} // namespace alr
