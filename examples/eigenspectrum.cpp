/**
 * @file
 * Spectral analysis on the accelerator: estimate the extremal
 * eigenvalues and condition number of a PDE system with Lanczos (every
 * inner product's SpMV runs on the engine), predict the PCG iteration
 * count from CG theory, then check the prediction against a real
 * accelerated solve.
 *
 *   ./eigenspectrum [grid_side]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "alrescha/accelerator.hh"
#include "kernels/eigen.hh"
#include "kernels/spmv.hh"
#include "sparse/generators.hh"

using namespace alr;

int
main(int argc, char **argv)
{
    Index side = argc > 1 ? Index(std::atoi(argv[1])) : 24;
    CsrMatrix a = gen::stencil2d(side, side, 5);
    std::printf("2D Poisson %ux%u: n = %u, nnz = %u\n", side, side,
                a.rows(), a.nnz());

    Accelerator acc;
    acc.loadSpmvOnly(a);
    auto onAccel = [&acc](const DenseVector &x) { return acc.spmv(x); };

    LanczosOptions lo;
    lo.steps = 60;
    LanczosResult spec = lanczosWith(onAccel, a.rows(), lo);
    std::printf("\nLanczos (%d steps, SpMVs on the engine):\n",
                spec.steps);
    std::printf("  lambda_min ~= %.6f  (exact %.6f)\n", spec.lambdaMin,
                4.0 - 4.0 * std::cos(M_PI / (side + 1.0)));
    std::printf("  lambda_max ~= %.6f  (exact %.6f)\n", spec.lambdaMax,
                4.0 + 4.0 * std::cos(M_PI / (side + 1.0)));
    std::printf("  condition  ~= %.1f\n", spec.conditionNumber);

    // CG theory: iterations ~ 0.5 sqrt(kappa) ln(2/eps).
    double eps = 1e-9;
    double predicted =
        0.5 * std::sqrt(spec.conditionNumber) * std::log(2.0 / eps);
    std::printf("\npredicted unpreconditioned CG iterations (tol %.0e): "
                "~%.0f\n",
                eps, predicted);

    Accelerator pde;
    pde.loadPde(a);
    DenseVector b(a.rows(), 1.0);
    PcgOptions opts;
    opts.tolerance = eps;
    opts.precondition = false;
    opts.maxIterations = 5000;
    PcgResult plain = pde.pcg(b, opts);
    opts.precondition = true;
    PcgResult pre = pde.pcg(b, opts);

    std::printf("measured: %d unpreconditioned, %d with the SymGS "
                "preconditioner\n",
                plain.iterations, pre.iterations);
    std::printf("\naccelerator telemetry across everything: %.3f ms, "
                "%.3f mJ\n",
                pde.report().seconds * 1e3,
                pde.report().energyJoules * 1e3);
    return 0;
}
