/**
 * @file
 * A tour of the locally-dense storage format and the Algorithm 1
 * conversion on the paper's own example (Fig 8: n = 9, omega = 3):
 * prints the block layout, the value stream, the separated diagonal,
 * and the generated configuration table.
 */

#include <cstdio>

#include "alrescha/config_table.hh"
#include "sparse/coo.hh"

using namespace alr;

namespace {

CsrMatrix
fig8Matrix()
{
    CooMatrix coo(9, 9);
    auto fillBlock = [&](Index br, Index bc) {
        for (Index lr = 0; lr < 3; ++lr) {
            for (Index lc = 0; lc < 3; ++lc) {
                Index r = br * 3 + lr;
                Index c = bc * 3 + lc;
                // Values encode their coordinates for readability.
                coo.add(r, c, r == c ? 10.0 + r : double(r) + double(c) / 10.0);
            }
        }
    };
    fillBlock(0, 0);
    fillBlock(0, 1);
    fillBlock(1, 0);
    fillBlock(1, 1);
    fillBlock(1, 2);
    fillBlock(2, 1);
    fillBlock(2, 2);
    return CsrMatrix::fromCoo(coo);
}

} // namespace

int
main()
{
    CsrMatrix a = fig8Matrix();
    std::printf("The Fig 8 example: n = 9, omega = 3, block pattern:\n");
    std::printf("  [A00 A01  . ]\n  [A10 A11 A12]\n  [ .  A21 A22]\n\n");

    auto ld = LocallyDenseMatrix::encode(a, 3, LdLayout::SymGs);
    std::printf("locally-dense encoding: %zu blocks, diagonal "
                "separated (%zu values), %zu B metadata\n\n",
                ld.blocks().size(), ld.diagonal().size(),
                ld.metadataBytes());

    std::printf("block stream order (off-diagonals first, diagonal "
                "last per block row):\n");
    for (const LdBlockInfo &blk : ld.blocks()) {
        std::printf("  block (%u,%u)%s payload:", blk.blockRow,
                    blk.blockCol, blk.isDiagonal() ? " [diagonal]" : "");
        for (Index i = 0; i < blk.size; ++i)
            std::printf(" %4.1f", ld.stream()[blk.offset + i]);
        std::printf("\n");
    }

    std::printf("\nseparated diagonal:");
    for (Value v : ld.diagonal())
        std::printf(" %.0f", v);
    std::printf("\n\nconfiguration table (Algorithm 1):\n");
    std::printf("  %-8s %-6s %-6s %-5s %-5s\n", "path", "InxIn",
                "InxOut", "order", "op");

    ConfigTable table = ConfigTable::convert(KernelType::SymGS, ld);
    for (const ConfigEntry &e : table.entries()) {
        std::printf("  %-8s %-6u %-6lld %-5s %-5s\n", toString(e.dp),
                    e.inxIn, (long long)e.inxOut,
                    e.order == AccessOrder::L2R ? "l2r" : "r2l",
                    e.op == OperandPort::Port1 ? "port1" : "port2");
    }
    std::printf("\n%zu bits per table row (2*ceil(log2(n/omega)) + 3), "
                "%u data-path switches\n",
                table.bitsPerEntry(), table.switchCount());
    return 0;
}
