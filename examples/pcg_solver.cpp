/**
 * @file
 * End-to-end PDE solve: discretize a 3D Poisson-like problem with a
 * 27-point stencil (the HPCG problem class), solve A x = b with
 * accelerated PCG (SymGS preconditioner + SpMV on Alrescha), and
 * compare against the host solver and the GPU baseline model.
 *
 *   ./pcg_solver [grid_side]
 */

#include <cstdio>
#include <cstdlib>

#include "alrescha/accelerator.hh"
#include "baselines/gpu_model.hh"
#include "kernels/blas1.hh"
#include "kernels/spmv.hh"
#include "sparse/generators.hh"

using namespace alr;

int
main(int argc, char **argv)
{
    Index side = argc > 1 ? Index(std::atoi(argv[1])) : 16;
    CsrMatrix a = gen::stencil3d(side, side, side, 27);
    std::printf("Poisson %ux%ux%u -> n = %u, nnz = %u\n", side, side,
                side, a.rows(), a.nnz());

    // Manufacture a known solution so the error is measurable.
    DenseVector xTrue(a.rows());
    for (Index i = 0; i < a.rows(); ++i)
        xTrue[i] = 0.25 + 0.5 * double(i % 17) / 17.0;
    DenseVector b = spmv(a, xTrue);

    // Accelerated solve.
    Accelerator acc;
    acc.loadPde(a);
    PcgOptions opts;
    opts.tolerance = 1e-9;
    PcgResult res = acc.pcg(b, opts);

    std::printf("\nPCG on Alrescha: %s in %d iterations, relative "
                "residual %.2e\n",
                res.converged ? "converged" : "did NOT converge",
                res.iterations, res.relResidual);
    std::printf("solution error ||x - x*||_inf = %.3e\n",
                maxAbsDiff(res.x, xTrue));

    AccelReport r = acc.report();
    std::printf("\naccelerator time  : %.3f ms (%llu cycles)\n",
                r.seconds * 1e3, (unsigned long long)r.cycles);
    std::printf("sequential ops    : %.1f%% (the D-SymGS fraction)\n",
                100.0 * r.sequentialOpFraction);
    std::printf("reconfigurations  : %.0f\n", r.reconfigurations);
    std::printf("energy            : %.3f mJ\n", r.energyJoules * 1e3);

    // Host-reference solve (same algorithm) as a sanity check.
    PcgResult host = pcgSolve(a, b, opts);
    std::printf("\nhost solver       : %d iterations, residual %.2e\n",
                host.iterations, host.relResidual);

    // GPU baseline estimate for the same number of iterations.
    GpuModel gpu;
    double gpuTime = res.iterations * gpu.pcgIterationSeconds(a);
    std::printf("GPU baseline est. : %.3f ms -> speedup %.1fx\n",
                gpuTime * 1e3, gpuTime / r.seconds);
    return res.converged ? 0 : 1;
}
