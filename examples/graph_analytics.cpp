/**
 * @file
 * Graph analytics on Alrescha: build a social-network-like graph, run
 * BFS, SSSP and PageRank through the accelerator's dense data paths,
 * verify against classical algorithms, and report telemetry.
 *
 *   ./graph_analytics [vertices] [avg_degree]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "alrescha/accelerator.hh"
#include "common/random.hh"
#include "kernels/graph.hh"
#include "sparse/generators.hh"

using namespace alr;

int
main(int argc, char **argv)
{
    Index n = argc > 1 ? Index(std::atoi(argv[1])) : 4096;
    Index deg = argc > 2 ? Index(std::atoi(argv[2])) : 12;

    Rng rng(7);
    CsrMatrix g = gen::powerLawGraph(n, deg, 0.9, rng, /*locality=*/0.6);
    std::printf("graph: %u vertices, %u edges\n", g.rows(), g.nnz());

    Accelerator acc;
    acc.loadGraph(g);

    // BFS from vertex 0.
    acc.resetStats();
    GraphResult bfs = acc.bfs(0);
    Index reached = 0;
    for (Value d : bfs.values)
        reached += std::isfinite(d);
    DenseVector bfsRef = bfsReference(g, 0);
    std::printf("\nBFS   : %u reached, %d rounds, %.2f us, verified %s\n",
                reached, bfs.rounds, acc.engine().seconds() * 1e6,
                bfs.values == bfsRef ? "OK" : "MISMATCH");

    // SSSP from vertex 0.
    acc.resetStats();
    GraphResult sssp = acc.sssp(0);
    DenseVector dijkstra = ssspReference(g, 0);
    Value worst = 0.0;
    for (size_t i = 0; i < dijkstra.size(); ++i) {
        if (std::isfinite(dijkstra[i]))
            worst = std::max(worst,
                             std::abs(sssp.values[i] - dijkstra[i]));
    }
    std::printf("SSSP  : %d rounds, %.2f us, max error vs Dijkstra "
                "%.2e\n",
                sssp.rounds, acc.engine().seconds() * 1e6, worst);

    // PageRank.
    acc.resetStats();
    GraphResult pr = acc.pagerank();
    auto top = [&](int k) {
        std::vector<Index> idx(g.rows());
        for (Index v = 0; v < g.rows(); ++v)
            idx[v] = v;
        std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                          [&](Index a, Index b) {
                              return pr.values[a] > pr.values[b];
                          });
        return idx;
    };
    std::printf("PR    : %d rounds, %.2f us\n", pr.rounds,
                acc.engine().seconds() * 1e6);
    std::printf("top-5 vertices by rank:");
    for (int i = 0; i < 5; ++i) {
        Index v = top(5)[i];
        std::printf("  %u (%.4f)", v, pr.values[v]);
    }
    std::printf("\n");

    AccelReport r = acc.report();
    std::printf("\nPR telemetry: %.1f KB from DRAM, %.1f%% bandwidth, "
                "%.2f uJ\n",
                r.bytesFromMemory / 1024.0,
                100.0 * r.bandwidthUtilization, r.energyJoules * 1e6);
    return 0;
}
