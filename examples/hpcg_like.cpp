/**
 * @file
 * HPCG-like benchmark driver: multigrid-preconditioned CG on a 3D
 * 27-point stencil, with every smoother sweep and SpMV executing on
 * the Alrescha engine -- one Accelerator per grid level, the natural
 * multi-kernel workload the paper's reconfigurability targets.
 *
 *   ./hpcg_like [grid_side] [levels]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "alrescha/accelerator.hh"
#include "kernels/blas1.hh"
#include "kernels/multigrid.hh"
#include "kernels/spmv.hh"

using namespace alr;

int
main(int argc, char **argv)
{
    Index side = argc > 1 ? Index(std::atoi(argv[1])) : 16;
    int levels = argc > 2 ? std::atoi(argv[2]) : 3;

    GeometricMultigrid mg(side, side, side, 27, levels);
    const CsrMatrix &a = mg.fineMatrix();
    std::printf("HPCG-like: %ux%ux%u grid, %d MG levels, n = %u, "
                "nnz = %u\n",
                side, side, side, mg.numLevels(), a.rows(), a.nnz());

    // One accelerator per level, each programmed once (the host
    // preprocessing is a one-time cost, §4).
    std::vector<std::unique_ptr<Accelerator>> accel;
    for (int l = 0; l < mg.numLevels(); ++l) {
        accel.push_back(std::make_unique<Accelerator>());
        accel.back()->loadPde(mg.level(l).a);
    }

    MgSmoother acceleratedSmoother = [&](int l, const MgLevel &,
                                         const DenseVector &b,
                                         DenseVector &x) {
        accel[size_t(l)]->symgsSweep(b, x, GsSweep::Symmetric);
    };

    // Manufactured problem.
    DenseVector xTrue(a.rows(), 1.0);
    DenseVector b = spmv(a, xTrue);

    // MG-preconditioned CG, SpMV on the fine-level accelerator.
    PcgKernels kernels;
    kernels.spmv = [&](const DenseVector &x) {
        return accel[0]->spmv(x);
    };
    kernels.precond = [&](const DenseVector &r) {
        return mg.vcycle(r, acceleratedSmoother);
    };

    PcgOptions opts;
    opts.tolerance = 1e-9;
    PcgResult res = pcgSolveWith(kernels, b, a.rows(), opts);

    std::printf("\nMG-PCG: %s in %d iterations, residual %.2e, error "
                "%.2e\n",
                res.converged ? "converged" : "NOT converged",
                res.iterations, res.relResidual,
                maxAbsDiff(res.x, xTrue));

    // Compare against single-level (plain SymGS) preconditioning.
    PcgResult flat = accel[0]->pcg(b, opts);
    std::printf("flat PCG (1-level SymGS preconditioner): %d "
                "iterations\n",
                flat.iterations);

    // Aggregate accelerator telemetry across levels.
    uint64_t cycles = 0;
    double joules = 0.0;
    for (auto &acc : accel) {
        cycles += acc->report().cycles;
        joules += acc->report().energyJoules;
    }
    double seconds = double(cycles) * accel[0]->params().secondsPerCycle();
    // HPCG-style rating: useful FLOPs of the fine operator per second.
    double flops_per_iter = 4.0 * double(a.nnz()); // SpMV + SymGS sweeps
    double gflops =
        flops_per_iter * res.iterations / seconds / 1e9;
    std::printf("\naccelerator totals: %.3f ms, %.3f mJ, ~%.2f "
                "GFLOP/s useful\n",
                seconds * 1e3, joules * 1e3, gflops);
    return res.converged ? 0 : 1;
}
