/**
 * @file
 * Quickstart: load a small sparse matrix onto the Alrescha accelerator,
 * run an SpMV, and read back the result plus the accelerator telemetry.
 *
 *   ./quickstart [path/to/matrix.mtx]
 *
 * Without an argument a 27-point stencil system is generated.
 */

#include <cstdio>

#include "alrescha/accelerator.hh"
#include "kernels/spmv.hh"
#include "sparse/generators.hh"
#include "sparse/mmio.hh"

using namespace alr;

int
main(int argc, char **argv)
{
    // 1. Get a sparse matrix: from a Matrix Market file, or generated.
    CsrMatrix a;
    if (argc > 1) {
        a = CsrMatrix::fromCoo(readMatrixMarketFile(argv[1]));
        std::printf("loaded %s: %u x %u, %u non-zeros\n", argv[1],
                    a.rows(), a.cols(), a.nnz());
    } else {
        a = gen::stencil3d(12, 12, 12, 27);
        std::printf("generated 27-point stencil: %u x %u, %u non-zeros\n",
                    a.rows(), a.cols(), a.nnz());
    }

    // 2. Program the accelerator: the host encodes the locally-dense
    //    format and the configuration table (one-time preprocessing).
    Accelerator acc;
    acc.loadSpmvOnly(a);
    std::printf("encoded: %zu blocks, %.1f%% in-block fill, %zu B "
                "metadata\n",
                acc.matrix().blocks().size(),
                100.0 * acc.matrix().blockDensity(),
                acc.matrix().metadataBytes());

    // 3. Run y = A x on the cycle-level engine.
    DenseVector x(a.cols(), 1.0);
    DenseVector y = acc.spmv(x);

    // 4. The result is real -- verify it against the host kernel.
    DenseVector ref = spmv(a, x);
    Value worst = 0.0;
    for (size_t i = 0; i < y.size(); ++i)
        worst = std::max(worst, std::abs(y[i] - ref[i]));
    std::printf("max |accelerator - host| = %.3g\n", worst);

    // 5. Telemetry.
    AccelReport r = acc.report();
    std::printf("cycles            : %llu\n",
                (unsigned long long)r.cycles);
    std::printf("time              : %.3f us\n", r.seconds * 1e6);
    std::printf("DRAM traffic      : %.1f KB\n",
                r.bytesFromMemory / 1024.0);
    std::printf("bandwidth utilized: %.1f%%\n",
                100.0 * r.bandwidthUtilization);
    std::printf("energy            : %.3f uJ\n", r.energyJoules * 1e6);
    return 0;
}
